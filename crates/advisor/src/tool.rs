//! The end-to-end index advisor: candidates (optionally merged) →
//! per-query INUM caches → workload pricing model → pluggable search
//! strategy → per-query outcomes (paper §V-E / §VI-E).
//!
//! For the cache-backed oracles the search runs on the incremental
//! [`WorkloadModel`] engine through a [`crate::search::SearchStrategy`]
//! selected by [`AdvisorOptions::strategy`] (lazy greedy by default): each
//! candidate probe re-prices only the queries that candidate can affect,
//! instead of the whole workload. The direct-optimizer oracle (ablations
//! only) keeps the naive closure-driven engine, since every probe there is
//! an optimizer call anyway.

use crate::candidates::{generate_candidates, merge_prefix_subsumed};
use crate::greedy::{greedy_select, GreedyOptions, GreedyResult};
use crate::search::StrategyKind;
use pinum_catalog::Catalog;
use pinum_core::access_costs::{collect_inum, AccessCostCatalog};
use pinum_core::builder::{build_cache_inum, BuilderOptions};
use pinum_core::collector::build_workload_models;
use pinum_core::{CandidatePool, PlanCache, Selection, WorkloadModel};
use pinum_optimizer::{Optimizer, OptimizerOptions};
use pinum_query::Query;
use std::time::Duration;

/// Which machinery answers what-if questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostOracle {
    /// PINUM: caches filled with ~2 optimizer calls, access costs with 1.
    PinumCache,
    /// Classic INUM: caches filled with one call per IOC.
    InumCache,
    /// No cache at all: every greedy evaluation calls the optimizer
    /// (intractably slow beyond tiny inputs; ablations only).
    DirectOptimizer,
}

/// Advisor knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdvisorOptions {
    pub budget_bytes: u64,
    pub oracle: CostOracle,
    pub builder: BuilderOptions,
    /// Rank by benefit per byte instead of raw benefit.
    pub benefit_per_byte: bool,
    /// Search strategy over the workload model (ignored by the
    /// direct-optimizer oracle, which has no model and keeps the naive
    /// closure greedy).
    pub strategy: StrategyKind,
    /// Merge prefix-subsumed candidates before pricing (workload-level
    /// pool shrinking; see
    /// [`crate::candidates::merge_prefix_subsumed`]).
    pub merge_candidates: bool,
}

impl AdvisorOptions {
    /// The paper's experiment: 5 GB budget, PINUM caches, lazy greedy
    /// (identical picks to the paper's greedy, fraction of the probes).
    pub fn paper_defaults() -> Self {
        Self {
            budget_bytes: 5 * 1024 * 1024 * 1024,
            oracle: CostOracle::PinumCache,
            builder: BuilderOptions::default(),
            benefit_per_byte: false,
            strategy: StrategyKind::LazyGreedy,
            merge_candidates: false,
        }
    }

    /// `paper_defaults` plus the workload-level optimizations that depart
    /// from the paper: prefix-subsumption candidate merging before
    /// pricing, and swap hill climbing after the greedy seed.
    pub fn optimized_defaults() -> Self {
        Self {
            strategy: StrategyKind::SwapHillClimb,
            merge_candidates: true,
            ..Self::paper_defaults()
        }
    }
}

/// The tool's default configuration is the optimized one — callers that
/// need the paper's exact setup (reproduction tables, ablations) ask for
/// [`AdvisorOptions::paper_defaults`] explicitly.
impl Default for AdvisorOptions {
    fn default() -> Self {
        Self::optimized_defaults()
    }
}

/// Before/after cost of one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub name: String,
    /// Cost with no candidate indexes.
    pub original_cost: f64,
    /// Cost with the suggested indexes.
    pub final_cost: f64,
}

impl QueryOutcome {
    /// The paper's headline metric: fractional improvement.
    pub fn improvement(&self) -> f64 {
        if self.original_cost <= 0.0 {
            0.0
        } else {
            1.0 - self.final_cost / self.original_cost
        }
    }
}

/// The advisor's output.
#[derive(Debug)]
pub struct Advice {
    pub pool: CandidatePool,
    pub greedy: GreedyResult,
    pub per_query: Vec<QueryOutcome>,
    /// Time spent building caches + collecting access costs (the paper's
    /// "cost model construction").
    pub model_build_time: Duration,
    /// Optimizer calls spent building the model.
    pub model_build_calls: usize,
    /// Candidates removed by workload-level prefix merging (0 when
    /// `merge_candidates` is off).
    pub candidates_merged: usize,
}

impl Advice {
    /// Average fractional improvement over the workload (the paper reports
    /// 95 %).
    pub fn average_improvement(&self) -> f64 {
        if self.per_query.is_empty() {
            return 0.0;
        }
        self.per_query
            .iter()
            .map(QueryOutcome::improvement)
            .sum::<f64>()
            / self.per_query.len() as f64
    }

    /// The selected indexes, resolved.
    pub fn selected_indexes(&self) -> Vec<&pinum_catalog::Index> {
        self.greedy
            .picked
            .iter()
            .map(|&i| self.pool.index(i))
            .collect()
    }
}

/// Runs the whole tool on a workload.
pub fn advise(catalog: &Catalog, queries: &[Query], options: &AdvisorOptions) -> Advice {
    let optimizer = Optimizer::new(catalog);
    let mut pool = generate_candidates(catalog, queries);
    let mut candidates_merged = 0;
    if options.merge_candidates {
        let (merged, dropped) = merge_prefix_subsumed(&pool);
        pool = merged;
        candidates_merged = dropped;
    }

    // --- Build the cost model (the part PINUM accelerates). ---
    let mut build_time = Duration::ZERO;
    let mut build_calls = 0usize;
    let mut models: Vec<(PlanCache, AccessCostCatalog)> = Vec::new();
    match options.oracle {
        CostOracle::PinumCache => {
            // Workload-level batched collection: plan caches stay two
            // calls per query, access costs cost one call per distinct
            // template shape instead of one per query.
            let built = build_workload_models(&optimizer, queries, &pool, &options.builder);
            build_time += built.wall;
            build_calls += built.cache_calls + built.collect_calls;
            models = built.models;
        }
        CostOracle::InumCache => {
            for q in queries {
                let built = build_cache_inum(&optimizer, q, &options.builder);
                let (access, astats) = collect_inum(&optimizer, q, &pool);
                build_time += built.stats.wall + astats.wall;
                build_calls += built.stats.optimizer_calls + astats.optimizer_calls;
                models.push((built.cache, access));
            }
        }
        CostOracle::DirectOptimizer => {}
    }

    // --- Flatten into the workload pricing model (cache oracles). ---
    let workload_model = (options.oracle != CostOracle::DirectOptimizer)
        .then(|| WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a))));

    // --- Search over the pool with the selected strategy. ---
    let gopts = GreedyOptions {
        budget_bytes: options.budget_bytes,
        benefit_per_byte: options.benefit_per_byte,
    };
    let greedy = match &workload_model {
        Some(model) => options.strategy.build().search(&pool, model, &gopts),
        None => greedy_select(&pool, &gopts, |sel: &Selection| -> f64 {
            let (config, _) = pool.configuration(sel);
            queries
                .iter()
                .map(|q| {
                    optimizer
                        .optimize(q, &config, &OptimizerOptions::standard())
                        .best_cost
                        .total
                })
                .sum()
        }),
    };

    // --- Per-query outcomes (reported from the same oracle). ---
    let empty = Selection::empty(pool.len());
    let per_query: Vec<QueryOutcome> = match &workload_model {
        None => {
            let (cfg_final, _) = pool.configuration(&greedy.selection);
            let cfg_empty = pinum_catalog::Configuration::empty();
            queries
                .iter()
                .map(|q| QueryOutcome {
                    name: q.name.clone(),
                    original_cost: optimizer
                        .optimize(q, &cfg_empty, &OptimizerOptions::standard())
                        .best_cost
                        .total,
                    final_cost: optimizer
                        .optimize(q, &cfg_final, &OptimizerOptions::standard())
                        .best_cost
                        .total,
                })
                .collect()
        }
        Some(model) => queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let original = model.price_query(i, &empty, None);
                let fin = model.price_query(i, &greedy.selection, None);
                QueryOutcome {
                    name: q.name.clone(),
                    original_cost: if original.is_finite() { original } else { 0.0 },
                    final_cost: if fin.is_finite() { fin } else { 0.0 },
                }
            })
            .collect(),
    };

    Advice {
        pool,
        greedy,
        per_query,
        model_build_time: build_time,
        model_build_calls: build_calls,
        candidates_merged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Column, ColumnType, Table};
    use pinum_query::QueryBuilder;

    fn setup() -> (Catalog, Vec<Query>) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            400_000,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(4_000),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
                Column::new("s", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            4_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(4_000),
                Column::new("w", ColumnType::Int4).with_ndv(50),
            ],
        ));
        let q1 = QueryBuilder::new("q1", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("d", "w"))
            .build();
        let q2 = QueryBuilder::new("q2", &cat)
            .table("f")
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("f", "s"))
            .build();
        (cat, vec![q1, q2])
    }

    #[test]
    fn advisor_improves_workload_within_budget() {
        let (cat, queries) = setup();
        let opts = AdvisorOptions {
            budget_bytes: 512 * 1024 * 1024,
            ..AdvisorOptions::paper_defaults()
        };
        let advice = advise(&cat, &queries, &opts);
        assert!(!advice.greedy.picked.is_empty(), "should pick something");
        assert!(advice.greedy.total_bytes <= opts.budget_bytes);
        assert!(
            advice.average_improvement() > 0.1,
            "improvement {:?}",
            advice.average_improvement()
        );
        for o in &advice.per_query {
            assert!(
                o.final_cost <= o.original_cost * (1.0 + 1e-9),
                "{}: got worse",
                o.name
            );
        }
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let (cat, queries) = setup();
        let opts = AdvisorOptions {
            budget_bytes: 0,
            ..AdvisorOptions::paper_defaults()
        };
        let advice = advise(&cat, &queries, &opts);
        assert!(advice.greedy.picked.is_empty());
        assert_eq!(advice.average_improvement(), 0.0);
    }

    #[test]
    fn model_engine_matches_naive_engine_exactly() {
        use crate::greedy::{greedy_select, greedy_select_model, GreedyOptions};
        use pinum_core::access_costs::collect_pinum;
        use pinum_core::builder::build_cache_pinum;
        use pinum_core::{CacheCostModel, WorkloadModel};
        use pinum_optimizer::Optimizer;

        let (cat, queries) = setup();
        let optimizer = Optimizer::new(&cat);
        let pool = generate_candidates(&cat, &queries);
        let models: Vec<(PlanCache, AccessCostCatalog)> = queries
            .iter()
            .map(|q| {
                let built = build_cache_pinum(&optimizer, q, &BuilderOptions::default());
                let (access, _) = collect_pinum(&optimizer, q, &pool);
                (built.cache, access)
            })
            .collect();
        let gopts = GreedyOptions {
            budget_bytes: 512 * 1024 * 1024,
            benefit_per_byte: false,
        };
        // The pre-WorkloadModel advisor: full re-pricing per probe. Totals
        // go through the canonical pairwise shape so the trajectory is
        // bit-comparable to the model engine's sum tree.
        let naive = greedy_select(&pool, &gopts, |sel: &Selection| {
            let costs: Vec<f64> = models
                .iter()
                .map(|(cache, access)| {
                    CacheCostModel::new(cache, access)
                        .estimate(sel)
                        .map(|e| e.cost)
                        .unwrap_or(f64::INFINITY)
                })
                .collect();
            pinum_core::pairwise_total(&costs)
        });
        let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
        let incremental = greedy_select_model(&pool, &gopts, &model);
        assert_eq!(naive.picked, incremental.picked);
        assert_eq!(
            naive.cost_trajectory, incremental.cost_trajectory,
            "trajectories diverged"
        );
        assert_eq!(naive.total_bytes, incremental.total_bytes);
        // The incremental engine re-probes each accepted winner once to
        // splice it into the priced state (instead of re-pricing the whole
        // workload), so it spends exactly one extra delta per pick.
        assert_eq!(
            naive.evaluations + naive.picked.len(),
            incremental.evaluations
        );
        assert!(incremental.queries_repriced > 0);
        assert_eq!(
            incremental.full_repricings, 1,
            "only the seed pricing may be full"
        );
    }

    #[test]
    fn optimized_defaults_merge_candidates_and_still_improve() {
        let (cat, queries) = setup();
        let paper = advise(
            &cat,
            &queries,
            &AdvisorOptions {
                budget_bytes: 512 * 1024 * 1024,
                ..AdvisorOptions::paper_defaults()
            },
        );
        let optimized = advise(
            &cat,
            &queries,
            &AdvisorOptions {
                budget_bytes: 512 * 1024 * 1024,
                ..AdvisorOptions::optimized_defaults()
            },
        );
        assert_eq!(paper.candidates_merged, 0);
        assert!(optimized.candidates_merged > 0, "nothing merged");
        assert!(optimized.pool.len() < paper.pool.len());
        assert!(optimized.average_improvement() > 0.1);
        assert!(optimized.greedy.total_bytes <= 512 * 1024 * 1024);
        // Pin pick quality: merging only drops prefix-subsumed candidates
        // and swap hill climbing is greedy-seeded, so the optimized
        // defaults may never end worse than the paper's configuration.
        assert!(
            optimized.average_improvement() >= paper.average_improvement() - 1e-9,
            "optimized defaults regressed quality: {} vs {}",
            optimized.average_improvement(),
            paper.average_improvement()
        );
    }

    #[test]
    fn optimized_defaults_are_the_default() {
        let d = AdvisorOptions::default();
        let o = AdvisorOptions::optimized_defaults();
        assert_eq!(d.strategy, o.strategy);
        assert_eq!(d.merge_candidates, o.merge_candidates);
        assert_eq!(d.budget_bytes, o.budget_bytes);
        assert_eq!(d.oracle, o.oracle);
    }

    #[test]
    fn every_strategy_improves_the_workload() {
        use crate::search::StrategyKind;
        let (cat, queries) = setup();
        let budget = 512 * 1024 * 1024;
        let greedy_final = {
            let advice = advise(
                &cat,
                &queries,
                &AdvisorOptions {
                    budget_bytes: budget,
                    ..AdvisorOptions::paper_defaults()
                },
            );
            *advice.greedy.cost_trajectory.last().unwrap()
        };
        for kind in [
            StrategyKind::EagerGreedy,
            StrategyKind::SwapHillClimb,
            StrategyKind::Anneal { seed: 3 },
        ] {
            let advice = advise(
                &cat,
                &queries,
                &AdvisorOptions {
                    budget_bytes: budget,
                    strategy: kind,
                    ..AdvisorOptions::paper_defaults()
                },
            );
            let fin = *advice.greedy.cost_trajectory.last().unwrap();
            assert!(
                fin <= greedy_final * (1.0 + 1e-9),
                "{kind:?} ended at {fin}, greedy at {greedy_final}"
            );
            assert!(
                advice.average_improvement() > 0.1,
                "{kind:?} no improvement"
            );
        }
    }

    #[test]
    fn inum_and_pinum_oracles_agree_on_direction() {
        let (cat, queries) = setup();
        let budget = 512 * 1024 * 1024;
        let pinum = advise(
            &cat,
            &queries,
            &AdvisorOptions {
                budget_bytes: budget,
                ..AdvisorOptions::paper_defaults()
            },
        );
        let inum = advise(
            &cat,
            &queries,
            &AdvisorOptions {
                budget_bytes: budget,
                oracle: CostOracle::InumCache,
                ..AdvisorOptions::paper_defaults()
            },
        );
        // Both improve the workload substantially; PINUM builds faster.
        assert!(pinum.average_improvement() > 0.1);
        assert!(inum.average_improvement() > 0.1);
        assert!(pinum.model_build_calls < inum.model_build_calls);
    }
}
