//! # pinum-advisor
//!
//! The index-selection tool of paper §V-E: "The tool expects a workload
//! and a space budget as input. It determines a set of indexes which
//! occupies less than the budgeted space and attempts to provide the
//! maximum speed up to the workload."
//!
//! * [`candidates`] statically analyses the queries into a large candidate
//!   set (the paper generates 1093 candidates for its ten-query workload),
//!   with optional workload-level prefix-subsumption merging to shrink the
//!   pool before pricing;
//! * [`greedy`] implements the iterative benefit-greedy selection — simple,
//!   but "it has been shown to perform better in terms of accuracy than
//!   more complex algorithms used in the commercial designers, mainly
//!   because of its significantly larger candidate index set". Two engines
//!   share the search: a naive full-repricing one and an incremental one
//!   over [`pinum_core::WorkloadModel`] that re-prices only the queries a
//!   probed candidate can affect;
//! * [`search`] turns the model-driven search into a framework: a
//!   [`search::SearchStrategy`] trait with eager greedy, **lazy greedy**
//!   (max-heap of stale benefit upper bounds, identical picks at a
//!   fraction of the probes), drop-one/add-one **swap hill climbing**, and
//!   deterministic **simulated annealing** — the latter two built on the
//!   workload model's removal deltas;
//! * [`tool`] wires candidates + INUM/PINUM caches + the workload model +
//!   the selected search strategy into the end-to-end advisor, with a
//!   pluggable cost oracle so the cache-based model can be compared
//!   against direct optimizer calls.
//!
//! With the `parallel` feature, the workload model flattens queries and
//! prices full re-pricings across std threads (see `pinum-core`).

pub mod candidates;
pub mod greedy;
pub mod search;
pub mod tool;

pub use candidates::{
    generate_candidates, generate_candidates_merged, merge_prefix_subsumed,
    merge_prefix_subsumed_with, MERGE_PENALTY_NOISE_FLOOR,
};
pub use greedy::{greedy_select, greedy_select_model, GreedyOptions, GreedyResult};
pub use search::{Anneal, EagerGreedy, LazyGreedy, SearchStrategy, StrategyKind, SwapHillClimb};
pub use tool::{advise, Advice, AdvisorOptions, CostOracle, QueryOutcome};
