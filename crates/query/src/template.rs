//! Per-relation **collection templates**: the shape access-path pricing
//! actually depends on.
//!
//! The cost of scanning one relation of a query — sequentially, through an
//! index, or via a bitmap — is a function of the *table* and of the
//! *filter predicates on that relation* alone (they determine index
//! condition selectivities and residual qual charges). Everything else a
//! query brings along — its join graph, projection list, interesting
//! orders — only changes how priced access arms are *interpreted* (which
//! arm covers an interesting order, which index runs index-only), never
//! what an arm costs.
//!
//! [`RelTemplate`] captures exactly that shape, and [`TemplateKey`] is its
//! bit-exact hashable identity, so a workload-level collector can group
//! hundreds of queries into a handful of template-shapes and price each
//! shape's access arms once (`pinum_core::WorkloadCollector`).

use crate::{FilterOp, Query, RelIdx};
use pinum_catalog::TableId;

/// The per-relation shape access-arm pricing depends on: the table plus
/// the ordered filter predicates on it.
///
/// Filter *order* is part of the shape: index-condition matching walks the
/// relation's filters in query order, so two queries only share a template
/// when their filter sequences agree exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RelTemplate {
    /// The catalog table backing the relation.
    pub table: TableId,
    /// `(column, predicate)` filters on the relation, in query order.
    pub filters: Vec<(u16, FilterOp)>,
}

impl RelTemplate {
    /// The template of relation `rel` of `query`.
    pub fn of(query: &Query, rel: RelIdx) -> Self {
        Self {
            table: query.table_of(rel),
            filters: query.filters_on(rel).map(|f| (f.column, f.op)).collect(),
        }
    }

    /// Number of filter predicates (the optimizer's per-tuple operator
    /// charge for this relation).
    pub fn filter_count(&self) -> u32 {
        self.filters.len() as u32
    }

    /// The template's hashable identity. Two templates share a key iff
    /// they price bit-identically: same table, same filter sequence with
    /// bit-equal predicate constants.
    pub fn key(&self) -> TemplateKey {
        TemplateKey {
            table: self.table,
            filters: self
                .filters
                .iter()
                .map(|&(col, op)| filter_key(col, op))
                .collect(),
        }
    }
}

/// Bit-exact identity of one filter predicate: the column, an operator
/// tag, and the constants' IEEE 754 bit patterns (so `-0.0` and `0.0`
/// templates stay distinct — they are distinct inputs to selectivity
/// arithmetic even when they price equally).
pub type FilterKey = (u16, u8, u64, u64);

fn filter_key(column: u16, op: FilterOp) -> FilterKey {
    match op {
        FilterOp::Eq { value } => (column, 0, value.to_bits(), 0),
        FilterOp::Range { lo, hi } => (column, 1, lo.to_bits(), hi.to_bits()),
    }
}

/// Hashable identity of a [`RelTemplate`] — the grouping key of
/// workload-level batched collection.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TemplateKey {
    table: TableId,
    filters: Vec<FilterKey>,
}

impl TemplateKey {
    pub fn table(&self) -> TableId {
        self.table
    }

    /// The filter identities, in query order.
    pub fn filters(&self) -> &[FilterKey] {
        &self.filters
    }

    /// Rebuilds a key from its parts — the wire codec round-trips
    /// template keys through this. Equality/hashing are field-exact, so a
    /// reconstructed key matches the original iff every part matches.
    pub fn from_parts(table: TableId, filters: Vec<FilterKey>) -> Self {
        Self { table, filters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryBuilder;
    use pinum_catalog::{Catalog, Column, ColumnType, Table};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["a", "b"] {
            cat.add_table(Table::new(
                name,
                10_000,
                vec![
                    Column::new("k", ColumnType::Int8).with_ndv(10_000),
                    Column::new("v", ColumnType::Int4).with_ndv(100),
                ],
            ));
        }
        cat
    }

    #[test]
    fn same_table_and_filters_share_a_key_across_queries() {
        let cat = catalog();
        let q1 = QueryBuilder::new("q1", &cat)
            .table("a")
            .table("b")
            .join(("a", "k"), ("b", "k"))
            .filter_range(("a", "v"), 0.0, 10.0)
            .select(("b", "v"))
            .order_by(("a", "v"))
            .build();
        let q2 = QueryBuilder::new("q2", &cat)
            .table("a")
            .filter_range(("a", "v"), 0.0, 10.0)
            .select(("a", "k"))
            .build();
        // Different join graphs, projections and interesting orders — the
        // `a` relation still collapses to one template.
        assert_eq!(RelTemplate::of(&q1, 0).key(), RelTemplate::of(&q2, 0).key());
        // Different tables never share.
        assert_ne!(RelTemplate::of(&q1, 0).key(), RelTemplate::of(&q1, 1).key());
    }

    #[test]
    fn filter_constants_are_bit_exact() {
        let cat = catalog();
        let build = |hi: f64| {
            QueryBuilder::new("q", &cat)
                .table("a")
                .filter_range(("a", "v"), 0.0, hi)
                .select(("a", "k"))
                .build()
        };
        let (q1, q2, q3) = (build(10.0), build(10.0), build(10.5));
        assert_eq!(RelTemplate::of(&q1, 0).key(), RelTemplate::of(&q2, 0).key());
        assert_ne!(RelTemplate::of(&q1, 0).key(), RelTemplate::of(&q3, 0).key());
    }

    #[test]
    fn unfiltered_relation_has_the_bare_table_template() {
        let cat = catalog();
        let q = QueryBuilder::new("q", &cat)
            .table("a")
            .select(("a", "k"))
            .build();
        let t = RelTemplate::of(&q, 0);
        assert!(t.filters.is_empty());
        assert_eq!(t.filter_count(), 0);
    }
}
