//! Interesting orders and interesting-order combinations (paper defs 2–4).
//!
//! An [`Ioc`] is nibble-packed into a `u64`: relation `r`'s nibble holds `0`
//! for "no order required" (the paper's Φ) or `1 + k` for the `k`-th entry
//! of that relation's interesting-order list. This makes the subset test at
//! the heart of PINUM's pruning rule (§V-D) a couple of bit operations.

use crate::{RelIdx, MAX_ORDERS_PER_REL, MAX_RELATIONS};

/// The interesting orders of one query: for each relation, the sorted,
/// deduplicated column ordinals that appear in join / GROUP BY / ORDER BY
/// clauses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterestingOrders {
    per_rel: Vec<Vec<u16>>,
}

impl InterestingOrders {
    /// Wraps per-relation order lists (must already be sorted + deduped).
    pub fn new(per_rel: Vec<Vec<u16>>) -> Self {
        assert!(per_rel.len() <= MAX_RELATIONS);
        for cols in &per_rel {
            assert!(cols.len() <= MAX_ORDERS_PER_REL);
            debug_assert!(
                cols.windows(2).all(|w| w[0] < w[1]),
                "orders must be sorted"
            );
        }
        Self { per_rel }
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.per_rel.len()
    }

    /// Interesting-order columns of relation `rel`.
    pub fn orders_of(&self, rel: RelIdx) -> &[u16] {
        &self.per_rel[rel as usize]
    }

    /// Number of interesting-order combinations:
    /// `Π_r (orders_r + 1)` — the paper's counting (e.g. 648 for TPC-H Q5).
    pub fn combination_count(&self) -> u64 {
        self.per_rel
            .iter()
            .map(|cols| cols.len() as u64 + 1)
            .product()
    }

    /// Iterates every IOC, including the all-Φ combination, in a stable
    /// lexicographic order.
    pub fn combinations(&self) -> IocIter<'_> {
        IocIter {
            orders: self,
            next: Some(Ioc::NONE),
        }
    }

    /// Encodes a choice of order per relation into an [`Ioc`]. `None`
    /// means Φ; `Some(col)` must be one of that relation's orders.
    pub fn encode(&self, choices: &[Option<u16>]) -> Ioc {
        assert_eq!(choices.len(), self.per_rel.len());
        let mut ioc = Ioc::NONE;
        for (rel, choice) in choices.iter().enumerate() {
            if let Some(col) = choice {
                let k = self.per_rel[rel]
                    .iter()
                    .position(|c| c == col)
                    .expect("column is not an interesting order of this relation");
                ioc = ioc.with_order(rel as RelIdx, k as u8);
            }
        }
        ioc
    }

    /// The column required on `rel` by `ioc`, if any.
    pub fn column_of(&self, ioc: Ioc, rel: RelIdx) -> Option<u16> {
        let nib = ioc.nibble(rel);
        if nib == 0 {
            None
        } else {
            Some(self.per_rel[rel as usize][(nib - 1) as usize])
        }
    }

    /// Decodes an [`Ioc`] into per-relation column choices.
    pub fn decode(&self, ioc: Ioc) -> Vec<Option<u16>> {
        (0..self.per_rel.len() as RelIdx)
            .map(|rel| self.column_of(ioc, rel))
            .collect()
    }
}

/// A nibble-packed interesting-order combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ioc(u64);

/// Mask with the low bit of every nibble set.
const NIBBLE_LOW: u64 = 0x1111_1111_1111_1111;

/// Collapses each nibble of `x` to a 1 (in the nibble's low bit) if the
/// nibble is non-zero.
#[inline]
fn nibble_nonzero_mask(x: u64) -> u64 {
    (x | (x >> 1) | (x >> 2) | (x >> 3)) & NIBBLE_LOW
}

impl Ioc {
    /// The all-Φ combination: no relation requires an order.
    pub const NONE: Ioc = Ioc(0);

    /// Raw encoding (for hashing/sorting).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a combination from its [`Self::raw`] encoding — the wire
    /// codec round-trips IOCs through this. The encoding is only
    /// meaningful against the same [`InterestingOrders`] it was packed
    /// for.
    pub fn from_raw(raw: u64) -> Ioc {
        Ioc(raw)
    }

    /// The nibble of relation `rel`: `0` for Φ, else 1-based order index.
    #[inline]
    pub fn nibble(self, rel: RelIdx) -> u8 {
        ((self.0 >> (rel * 4)) & 0xF) as u8
    }

    /// This combination with relation `rel` requiring its `k`-th (0-based)
    /// interesting order.
    #[inline]
    pub fn with_order(self, rel: RelIdx, k: u8) -> Ioc {
        debug_assert!((k as usize) < MAX_ORDERS_PER_REL);
        debug_assert!((rel as usize) < MAX_RELATIONS);
        let shift = rel * 4;
        Ioc((self.0 & !(0xF << shift)) | (((k as u64) + 1) << shift))
    }

    /// This combination with relation `rel` reset to Φ.
    #[inline]
    pub fn without(self, rel: RelIdx) -> Ioc {
        Ioc(self.0 & !(0xF << (rel * 4)))
    }

    /// True if every order required by `self` is also required by `other`
    /// — the `S_A ⊆ S_B` of the paper's pruning condition.
    #[inline]
    pub fn is_subset_of(self, other: Ioc) -> bool {
        // For every non-zero nibble of self, other's nibble must be equal:
        // i.e. no nibble may be (self != 0) && (self ^ other != 0).
        nibble_nonzero_mask(self.0) & nibble_nonzero_mask(self.0 ^ other.0) == 0
    }

    /// Merges two combinations if they do not conflict (no relation with two
    /// different required orders).
    #[inline]
    pub fn union(self, other: Ioc) -> Option<Ioc> {
        let conflict = nibble_nonzero_mask(self.0)
            & nibble_nonzero_mask(other.0)
            & nibble_nonzero_mask(self.0 ^ other.0);
        if conflict != 0 {
            None
        } else {
            Some(Ioc(self.0 | other.0))
        }
    }

    /// Number of relations with a required order.
    pub fn required_count(self) -> u32 {
        nibble_nonzero_mask(self.0).count_ones()
    }

    /// Renders the combination like the paper's `(A, Φ, C)` notation, given
    /// the order lists.
    pub fn display(self, orders: &InterestingOrders) -> String {
        let parts: Vec<String> = (0..orders.relation_count() as RelIdx)
            .map(|rel| match orders.column_of(self, rel) {
                Some(col) => format!("c{col}"),
                None => "Φ".to_string(),
            })
            .collect();
        format!("({})", parts.join(","))
    }
}

/// Iterator over all combinations of an [`InterestingOrders`].
pub struct IocIter<'a> {
    orders: &'a InterestingOrders,
    next: Option<Ioc>,
}

impl Iterator for IocIter<'_> {
    type Item = Ioc;

    fn next(&mut self) -> Option<Ioc> {
        let current = self.next?;
        // Odometer increment over nibbles.
        let mut succ = current;
        let mut rel = 0usize;
        loop {
            if rel >= self.orders.relation_count() {
                self.next = None;
                break;
            }
            let nib = succ.nibble(rel as RelIdx);
            if (nib as usize) < self.orders.orders_of(rel as RelIdx).len() {
                succ = succ.with_order(rel as RelIdx, nib); // nib is 0-based next index
                self.next = Some(succ);
                break;
            }
            succ = succ.without(rel as RelIdx);
            rel += 1;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io(counts: &[usize]) -> InterestingOrders {
        InterestingOrders::new(counts.iter().map(|&n| (0..n as u16).collect()).collect())
    }

    #[test]
    fn combination_count_is_product() {
        assert_eq!(io(&[1, 2, 2]).combination_count(), 18);
        assert_eq!(io(&[3, 2, 2, 2, 2, 1]).combination_count(), 648); // TPC-H Q5
        assert_eq!(io(&[0, 0]).combination_count(), 1);
    }

    #[test]
    fn iterator_yields_exactly_all_combinations() {
        let orders = io(&[1, 2, 2]);
        let all: Vec<Ioc> = orders.combinations().collect();
        assert_eq!(all.len(), 18);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 18);
        assert!(all.contains(&Ioc::NONE));
    }

    #[test]
    fn subset_semantics() {
        let a = Ioc::NONE.with_order(0, 0); // (A, Φ, Φ)
        let ab = a.with_order(1, 1); // (A, B2, Φ)
        let b = Ioc::NONE.with_order(1, 1);
        let other = Ioc::NONE.with_order(0, 1); // different order on rel 0
        assert!(Ioc::NONE.is_subset_of(a));
        assert!(a.is_subset_of(ab));
        assert!(b.is_subset_of(ab));
        assert!(!ab.is_subset_of(a));
        assert!(!other.is_subset_of(ab));
        assert!(a.is_subset_of(a));
    }

    #[test]
    fn union_detects_conflicts() {
        let a = Ioc::NONE.with_order(0, 0);
        let b = Ioc::NONE.with_order(1, 1);
        let conflict = Ioc::NONE.with_order(0, 1);
        let u = a.union(b).unwrap();
        assert_eq!(u.nibble(0), 1);
        assert_eq!(u.nibble(1), 2);
        assert!(a.union(conflict).is_none());
        assert_eq!(a.union(a), Some(a));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let orders = InterestingOrders::new(vec![vec![3, 7], vec![], vec![1]]);
        let ioc = orders.encode(&[Some(7), None, Some(1)]);
        assert_eq!(orders.decode(ioc), vec![Some(7), None, Some(1)]);
        assert_eq!(orders.column_of(ioc, 0), Some(7));
        assert_eq!(orders.column_of(ioc, 1), None);
        assert_eq!(ioc.required_count(), 2);
    }

    #[test]
    fn display_matches_paper_notation() {
        let orders = InterestingOrders::new(vec![vec![0], vec![2]]);
        let ioc = orders.encode(&[Some(0), None]);
        assert_eq!(ioc.display(&orders), "(c0,Φ)");
    }

    #[test]
    fn required_count_counts_nonphi() {
        assert_eq!(Ioc::NONE.required_count(), 0);
        assert_eq!(Ioc::NONE.with_order(3, 2).required_count(), 1);
        assert_eq!(
            Ioc::NONE.with_order(0, 0).with_order(5, 1).required_count(),
            2
        );
    }
}
