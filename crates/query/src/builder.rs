//! Ergonomic construction of [`Query`] values by table/column *name*.

use crate::{FilterOp, FilterPredicate, JoinPredicate, Query, RelIdx};
use pinum_catalog::Catalog;

/// Builder resolving names against a catalog.
///
/// ```
/// # use pinum_catalog::{Catalog, Column, ColumnType, Table};
/// # use pinum_query::QueryBuilder;
/// # let mut cat = Catalog::new();
/// # cat.add_table(Table::new("t", 100, vec![Column::new("a", ColumnType::Int8)]));
/// # cat.add_table(Table::new("s", 100, vec![Column::new("a", ColumnType::Int8)]));
/// let q = QueryBuilder::new("demo", &cat)
///     .table("t")
///     .table("s")
///     .join(("t", "a"), ("s", "a"))
///     .select(("t", "a"))
///     .build();
/// assert_eq!(q.relation_count(), 2);
/// ```
pub struct QueryBuilder<'a> {
    catalog: &'a Catalog,
    query: Query,
}

impl<'a> QueryBuilder<'a> {
    pub fn new(name: impl Into<String>, catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            query: Query {
                name: name.into(),
                relations: Vec::new(),
                filters: Vec::new(),
                joins: Vec::new(),
                select: Vec::new(),
                group_by: Vec::new(),
                order_by: Vec::new(),
            },
        }
    }

    fn resolve(&self, (table, column): (&str, &str)) -> (RelIdx, u16) {
        let tid = self
            .catalog
            .table_id(table)
            .unwrap_or_else(|| panic!("unknown table {table:?}"));
        let rel = self
            .query
            .relations
            .iter()
            .position(|t| *t == tid)
            .unwrap_or_else(|| panic!("table {table:?} not in FROM clause"))
            as RelIdx;
        let col = self
            .catalog
            .table(tid)
            .column_ordinal(column)
            .unwrap_or_else(|| panic!("unknown column {table}.{column}"));
        (rel, col)
    }

    /// Adds a table to the FROM clause.
    pub fn table(mut self, name: &str) -> Self {
        let tid = self
            .catalog
            .table_id(name)
            .unwrap_or_else(|| panic!("unknown table {name:?}"));
        assert!(
            !self.query.relations.contains(&tid),
            "table {name:?} added twice (self-joins unsupported)"
        );
        self.query.relations.push(tid);
        self
    }

    /// Adds an equi-join predicate.
    pub fn join(mut self, left: (&str, &str), right: (&str, &str)) -> Self {
        let left = self.resolve(left);
        let right = self.resolve(right);
        self.query.joins.push(JoinPredicate { left, right });
        self
    }

    /// Adds `col = value`.
    pub fn filter_eq(mut self, col: (&str, &str), value: f64) -> Self {
        let (rel, column) = self.resolve(col);
        self.query.filters.push(FilterPredicate {
            rel,
            column,
            op: FilterOp::Eq { value },
        });
        self
    }

    /// Adds `lo <= col < hi`.
    pub fn filter_range(mut self, col: (&str, &str), lo: f64, hi: f64) -> Self {
        let (rel, column) = self.resolve(col);
        self.query.filters.push(FilterPredicate {
            rel,
            column,
            op: FilterOp::Range { lo, hi },
        });
        self
    }

    /// Adds an output column.
    pub fn select(mut self, col: (&str, &str)) -> Self {
        let col = self.resolve(col);
        self.query.select.push(col);
        self
    }

    /// Adds a GROUP BY column.
    pub fn group_by(mut self, col: (&str, &str)) -> Self {
        let col = self.resolve(col);
        self.query.group_by.push(col);
        self
    }

    /// Adds an ORDER BY column.
    pub fn order_by(mut self, col: (&str, &str)) -> Self {
        let col = self.resolve(col);
        self.query.order_by.push(col);
        self
    }

    /// Validates and returns the query.
    pub fn build(self) -> Query {
        self.query.validate(self.catalog);
        self.query
    }

    /// Returns the query without validation (tests of invalid shapes).
    pub fn build_unchecked(self) -> Query {
        self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Column, ColumnType, Table};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "orders",
            1000,
            vec![
                Column::new("o_id", ColumnType::Int8).with_ndv(1000),
                Column::new("o_cust", ColumnType::Int8).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "customer",
            100,
            vec![Column::new("c_id", ColumnType::Int8).with_ndv(100)],
        ));
        cat
    }

    #[test]
    fn builds_a_join_query() {
        let cat = catalog();
        let q = QueryBuilder::new("q", &cat)
            .table("orders")
            .table("customer")
            .join(("orders", "o_cust"), ("customer", "c_id"))
            .filter_eq(("orders", "o_id"), 5.0)
            .select(("customer", "c_id"))
            .order_by(("orders", "o_id"))
            .build();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.order_by, vec![(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "unknown table")]
    fn unknown_table_panics() {
        let cat = catalog();
        let _ = QueryBuilder::new("q", &cat).table("nope");
    }

    #[test]
    #[should_panic(expected = "not in FROM clause")]
    fn join_requires_from() {
        let cat = catalog();
        let _ = QueryBuilder::new("q", &cat)
            .table("orders")
            .join(("orders", "o_cust"), ("customer", "c_id"));
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_table_panics() {
        let cat = catalog();
        let _ = QueryBuilder::new("q", &cat).table("orders").table("orders");
    }
}
