//! # pinum-query
//!
//! Query representation for the PINUM reproduction: select-project-join
//! queries with GROUP BY / ORDER BY, selectivity estimation, and the
//! *interesting order* machinery that the whole paper revolves around:
//!
//! * an **interesting order** is "a tuple ordering specified by the columns
//!   in a join, group-by or order-by clause" (definition 2);
//! * an **interesting order combination** (IOC) picks at most one
//!   interesting order per table of the query (definition 3);
//! * an index **covers** an interesting order if the order is its first
//!   column; an atomic configuration covers an IOC (definition 4).
//!
//! The scope matches the paper's implementation: no complex sub-queries, no
//! inheritance, no outer joins (§VI-A).

pub mod builder;
pub mod ioc;
pub mod selectivity;
pub mod template;

pub use builder::QueryBuilder;
pub use ioc::{InterestingOrders, Ioc, IocIter};
pub use template::{FilterKey, RelTemplate, TemplateKey};

use pinum_catalog::{Catalog, TableId};

/// Index of a relation *within one query* (queries join at most
/// [`MAX_RELATIONS`] tables).
pub type RelIdx = u16;

/// Maximum relations per query, bounded by the nibble-packed [`Ioc`]
/// encoding (16 nibbles in a `u64`).
pub const MAX_RELATIONS: usize = 16;

/// Maximum interesting orders per relation, bounded by the nibble encoding
/// (value 0 is reserved for "no order").
pub const MAX_ORDERS_PER_REL: usize = 15;

/// Comparison operator of a filter predicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterOp {
    /// `col = value`
    Eq { value: f64 },
    /// `lo <= col < hi`
    Range { lo: f64, hi: f64 },
}

/// A single-table filter predicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterPredicate {
    pub rel: RelIdx,
    pub column: u16,
    pub op: FilterOp,
}

/// An equi-join predicate between two relations of the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinPredicate {
    pub left: (RelIdx, u16),
    pub right: (RelIdx, u16),
}

impl JoinPredicate {
    /// The side of this predicate on `rel`, if any.
    pub fn side_on(&self, rel: RelIdx) -> Option<u16> {
        if self.left.0 == rel {
            Some(self.left.1)
        } else if self.right.0 == rel {
            Some(self.right.1)
        } else {
            None
        }
    }

    /// True if the predicate connects `a` and `b` (in either direction).
    pub fn connects(&self, a: RelIdx, b: RelIdx) -> bool {
        (self.left.0 == a && self.right.0 == b) || (self.left.0 == b && self.right.0 == a)
    }
}

/// A column of the query's output or grouping/ordering clauses.
pub type QualifiedColumn = (RelIdx, u16);

/// A select-project-join query with optional grouping and ordering.
#[derive(Debug, Clone)]
pub struct Query {
    /// Human-readable name (e.g. `"Q5"`).
    pub name: String,
    /// The tables in the FROM clause; `RelIdx` indexes into this.
    pub relations: Vec<TableId>,
    /// Conjunctive single-table predicates.
    pub filters: Vec<FilterPredicate>,
    /// Conjunctive equi-join predicates.
    pub joins: Vec<JoinPredicate>,
    /// Output columns.
    pub select: Vec<QualifiedColumn>,
    /// GROUP BY columns (empty = no grouping).
    pub group_by: Vec<QualifiedColumn>,
    /// ORDER BY columns (empty = no required order).
    pub order_by: Vec<QualifiedColumn>,
}

impl Query {
    /// Validates internal consistency against a catalog; panics on misuse.
    /// Called by [`QueryBuilder::build`].
    pub fn validate(&self, catalog: &Catalog) {
        assert!(!self.relations.is_empty(), "query needs at least one table");
        assert!(
            self.relations.len() <= MAX_RELATIONS,
            "at most {MAX_RELATIONS} relations per query"
        );
        let col_ok = |(rel, col): &QualifiedColumn| {
            (*rel as usize) < self.relations.len()
                && (*col as usize) < catalog.table(self.relations[*rel as usize]).columns().len()
        };
        for f in &self.filters {
            assert!(col_ok(&(f.rel, f.column)), "filter column out of range");
        }
        for j in &self.joins {
            assert!(
                col_ok(&j.left) && col_ok(&j.right),
                "join column out of range"
            );
            assert_ne!(j.left.0, j.right.0, "self-joins are out of scope (§VI-A)");
        }
        for c in self
            .select
            .iter()
            .chain(self.group_by.iter())
            .chain(self.order_by.iter())
        {
            assert!(col_ok(c), "projection/grouping column out of range");
        }
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// The catalog table backing relation `rel`.
    pub fn table_of(&self, rel: RelIdx) -> TableId {
        self.relations[rel as usize]
    }

    /// All columns of relation `rel` referenced anywhere in the query,
    /// deduplicated and sorted — determines which indexes can answer the
    /// query index-only.
    pub fn referenced_columns(&self, rel: RelIdx) -> Vec<u16> {
        let mut cols: Vec<u16> = Vec::new();
        let mut push = |r: RelIdx, c: u16| {
            if r == rel {
                cols.push(c);
            }
        };
        for f in &self.filters {
            push(f.rel, f.column);
        }
        for j in &self.joins {
            push(j.left.0, j.left.1);
            push(j.right.0, j.right.1);
        }
        for &(r, c) in self
            .select
            .iter()
            .chain(self.group_by.iter())
            .chain(self.order_by.iter())
        {
            push(r, c);
        }
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Filter predicates on relation `rel`.
    pub fn filters_on(&self, rel: RelIdx) -> impl Iterator<Item = &FilterPredicate> + '_ {
        self.filters.iter().filter(move |f| f.rel == rel)
    }

    /// Join predicates touching relation `rel`.
    pub fn joins_on(&self, rel: RelIdx) -> impl Iterator<Item = &JoinPredicate> + '_ {
        self.joins
            .iter()
            .filter(move |j| j.left.0 == rel || j.right.0 == rel)
    }

    /// The query's *interesting orders* per relation (definition 2): the
    /// columns of each relation that appear in a join, GROUP BY, or
    /// ORDER BY clause.
    pub fn interesting_orders(&self) -> InterestingOrders {
        let mut per_rel: Vec<Vec<u16>> = vec![Vec::new(); self.relations.len()];
        for j in &self.joins {
            per_rel[j.left.0 as usize].push(j.left.1);
            per_rel[j.right.0 as usize].push(j.right.1);
        }
        for &(rel, col) in self.group_by.iter().chain(self.order_by.iter()) {
            per_rel[rel as usize].push(col);
        }
        for cols in &mut per_rel {
            cols.sort_unstable();
            cols.dedup();
            assert!(
                cols.len() <= MAX_ORDERS_PER_REL,
                "more than {MAX_ORDERS_PER_REL} interesting orders on one relation"
            );
        }
        InterestingOrders::new(per_rel)
    }

    /// True when the join graph is connected (no Cartesian products), which
    /// is the class of queries the workloads generate.
    pub fn join_graph_connected(&self) -> bool {
        let n = self.relations.len();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u16];
        seen[0] = true;
        while let Some(r) = stack.pop() {
            for j in &self.joins {
                for other in [j.left.0, j.right.0] {
                    if j.connects(r, other) && !seen[other as usize] {
                        seen[other as usize] = true;
                        stack.push(other);
                    }
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Column, ColumnType, Table};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for (name, rows) in [("a", 1000u64), ("b", 500), ("c", 200)] {
            cat.add_table(Table::new(
                name,
                rows,
                vec![
                    Column::new("k", ColumnType::Int8).with_ndv(rows),
                    Column::new("v", ColumnType::Int4).with_ndv(rows / 2),
                    Column::new("w", ColumnType::Int4).with_ndv(10),
                ],
            ));
        }
        cat
    }

    fn three_way(cat: &Catalog) -> Query {
        QueryBuilder::new("q", cat)
            .table("a")
            .table("b")
            .table("c")
            .join(("a", "k"), ("b", "k"))
            .join(("b", "v"), ("c", "k"))
            .filter_range(("a", "v"), 0.0, 5.0)
            .select(("a", "w"))
            .order_by(("c", "v"))
            .build()
    }

    #[test]
    fn interesting_orders_from_clauses() {
        let cat = catalog();
        let q = three_way(&cat);
        let io = q.interesting_orders();
        // a: join col k → 1 order. b: k and v → 2. c: k (join) + v (order by) → 2.
        assert_eq!(io.orders_of(0), &[0]);
        assert_eq!(io.orders_of(1), &[0, 1]);
        assert_eq!(io.orders_of(2), &[0, 1]);
        // (1+1)*(2+1)*(2+1) = 18 combinations, matching the paper's
        // product-of-(orders+1) counting.
        assert_eq!(io.combination_count(), 18);
    }

    #[test]
    fn referenced_columns_dedup() {
        let cat = catalog();
        let q = three_way(&cat);
        assert_eq!(q.referenced_columns(0), vec![0, 1, 2]);
        assert_eq!(q.referenced_columns(1), vec![0, 1]);
        assert_eq!(q.referenced_columns(2), vec![0, 1]);
    }

    #[test]
    fn join_graph_connectivity() {
        let cat = catalog();
        let q = three_way(&cat);
        assert!(q.join_graph_connected());
        let disconnected = QueryBuilder::new("q2", &cat)
            .table("a")
            .table("b")
            .select(("a", "k"))
            .build_unchecked();
        assert!(!disconnected.join_graph_connected());
    }

    #[test]
    #[should_panic(expected = "self-joins")]
    fn self_join_rejected() {
        let cat = catalog();
        let mut q = three_way(&cat);
        q.joins.push(JoinPredicate {
            left: (0, 0),
            right: (0, 1),
        });
        q.validate(&cat);
    }
}
