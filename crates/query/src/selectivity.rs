//! Selectivity estimation (PostgreSQL `clauselist_selectivity`,
//! `eqsel`, `scalarltsel`, `eqjoinsel`).

use crate::{FilterOp, FilterPredicate, JoinPredicate, Query, RelIdx};
use pinum_catalog::{Catalog, TableId};

/// Selectivity of one predicate on a table column — the query-independent
/// primitive both the per-query path and template-batched collection
/// price through (one arithmetic path keeps them bit-identical).
pub fn column_filter_selectivity(
    catalog: &Catalog,
    table: TableId,
    column: u16,
    op: FilterOp,
) -> f64 {
    let stats = catalog.table(table).column(column).stats();
    match op {
        FilterOp::Eq { .. } => stats.eq_selectivity(),
        FilterOp::Range { lo, hi } => stats.range_selectivity(lo, hi),
    }
}

/// Selectivity of one filter predicate.
pub fn filter_selectivity(catalog: &Catalog, query: &Query, f: &FilterPredicate) -> f64 {
    column_filter_selectivity(catalog, query.table_of(f.rel), f.column, f.op)
}

/// Combined selectivity of all filters on `rel`, assuming independence
/// (PostgreSQL's default for unrelated columns).
pub fn relation_selectivity(catalog: &Catalog, query: &Query, rel: RelIdx) -> f64 {
    query
        .filters_on(rel)
        .map(|f| filter_selectivity(catalog, query, f))
        .product::<f64>()
        .clamp(0.0, 1.0)
}

/// Rows surviving the filters on `rel`.
pub fn relation_rows(catalog: &Catalog, query: &Query, rel: RelIdx) -> f64 {
    let table = catalog.table(query.table_of(rel));
    (table.rows() as f64 * relation_selectivity(catalog, query, rel)).max(1.0)
}

/// Selectivity of an equi-join predicate: `1 / max(ndv_left, ndv_right)`
/// (PostgreSQL `eqjoinsel` without MCV refinement).
pub fn join_selectivity(catalog: &Catalog, query: &Query, j: &JoinPredicate) -> f64 {
    let ndv = |(rel, col): (RelIdx, u16)| {
        catalog
            .table(query.table_of(rel))
            .column(col)
            .stats()
            .n_distinct
            .max(1.0)
    };
    (1.0 / ndv(j.left).max(ndv(j.right))).clamp(0.0, 1.0)
}

/// Distinct count of a column after the relation's filters, PostgreSQL's
/// heuristic `min(ndv, filtered_rows)`.
pub fn filtered_ndv(catalog: &Catalog, query: &Query, rel: RelIdx, col: u16) -> f64 {
    let ndv = catalog
        .table(query.table_of(rel))
        .column(col)
        .stats()
        .n_distinct;
    ndv.min(relation_rows(catalog, query, rel)).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryBuilder;
    use pinum_catalog::{Column, ColumnStats, ColumnType, Table};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "fact",
            100_000,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(1_000),
                Column::new("val", ColumnType::Int4)
                    .with_stats(ColumnStats::uniform(0.0, 10_000.0, 10_000.0)),
            ],
        ));
        cat.add_table(Table::new(
            "dim",
            1_000,
            vec![Column::new("pk", ColumnType::Int8).with_ndv(1_000)],
        ));
        cat
    }

    fn query(cat: &Catalog) -> Query {
        QueryBuilder::new("q", cat)
            .table("fact")
            .table("dim")
            .join(("fact", "fk"), ("dim", "pk"))
            .filter_range(("fact", "val"), 0.0, 100.0) // 1% selectivity
            .select(("dim", "pk"))
            .build()
    }

    #[test]
    fn one_percent_range_filter() {
        let cat = catalog();
        let q = query(&cat);
        let sel = relation_selectivity(&cat, &q, 0);
        assert!((sel - 0.01).abs() < 1e-6, "sel = {sel}");
        assert!((relation_rows(&cat, &q, 0) - 1000.0).abs() < 1.0);
    }

    #[test]
    fn unfiltered_relation_is_full() {
        let cat = catalog();
        let q = query(&cat);
        assert_eq!(relation_selectivity(&cat, &q, 1), 1.0);
        assert_eq!(relation_rows(&cat, &q, 1), 1000.0);
    }

    #[test]
    fn fk_join_selectivity() {
        let cat = catalog();
        let q = query(&cat);
        let sel = join_selectivity(&cat, &q, &q.joins[0]);
        assert!((sel - 1.0 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn filtered_ndv_clamps_to_rows() {
        let cat = catalog();
        let q = query(&cat);
        // fact.val has 10k distinct but only ~1000 rows survive the filter.
        let ndv = filtered_ndv(&cat, &q, 0, 1);
        assert!(ndv <= 1000.0 + 1.0);
        // dim.pk keeps its full ndv.
        assert_eq!(filtered_ndv(&cat, &q, 1, 0), 1000.0);
    }

    #[test]
    fn conjunction_multiplies() {
        let cat = catalog();
        let q = QueryBuilder::new("q", &cat)
            .table("fact")
            .filter_range(("fact", "val"), 0.0, 100.0)
            .filter_eq(("fact", "fk"), 1.0)
            .select(("fact", "val"))
            .build();
        let sel = relation_selectivity(&cat, &q, 0);
        assert!((sel - 0.01 * 0.001).abs() < 1e-9);
    }
}
