//! # pinum-online — the workload as a stream
//!
//! The paper makes what-if pricing cheap enough to run *continuously*;
//! this crate is the serving layer that actually does so. [`OnlineAdvisor`]
//! runs as a long-lived daemon over a persistent
//! [`pinum_core::PricingSession`] — the streaming `WorkloadModel`, the
//! current [`Selection`], and a **live
//! [`PricedWorkload`](pinum_core::PricedWorkload)** owned together,
//! spliced (never rebuilt) through the session lifecycle:
//!
//! * **admit** — every arriving query's `(plan cache, access catalog)`
//!   pair (the one-optimizer-call artifacts) is spliced into the session
//!   in O(that query's access arms) plus one single-query pricing; the
//!   priced state stays bit-identical to a fresh `price_full` at every
//!   step (debug-asserted, sampled via `PINUM_ASSERT_SAMPLE`). Admissions
//!   may carry the query's [`TemplateKey`]s for drift attribution; the
//!   window slides by count, with optional per-round weight decay.
//!   In-place [`OnlineAdvisor::reweight`] events (the same query
//!   getting hotter) re-price exactly one query.
//! * **attribute** — [`DriftAttribution`] tracks each template's share of
//!   the live priced cost since the last re-advise. The mean-based drift
//!   detector says *whether* the selection regressed; attribution says
//!   *which templates* did.
//! * **scoped re-advise** — re-selection fires on epoch boundaries, on
//!   drift, or on demand, **warm-started** from the previous selection
//!   *with its exact priced state handed intact* to
//!   [`SearchStrategy::search_scoped`] — so a steady-state re-advise
//!   performs **zero** full workload re-pricings (accepted picks are
//!   delta splices too; [`OnlineStats::full_repricings`] counts the
//!   exceptions and the `exp_scoped_readvise` gate holds it at 0). When
//!   drift fired and attribution localized it, the search is additionally
//!   **scoped**: only candidates whose inverted-index entry intersects
//!   the regressed queries are probed.
//! * **compact** — once tombstones outnumber live queries the session
//!   compacts (bit-identical pricing, O(window) renumbering), keeping
//!   lifetime memory O(window).
//!
//! The daemon is deterministic: the same pool, option set, and admission
//! sequence produce bit-identical selections, costs, and trigger
//! sequences — which is how the drift experiments can hold it against
//! full-rebuild and full-scope baselines on the same history.
//!
//! [`SearchStrategy::search_scoped`]: pinum_advisor::search::SearchStrategy::search_scoped

pub mod attribution;

pub use attribution::{DriftAttribution, DriftAttributionParts, SharePolicy};

use pinum_advisor::greedy::GreedyOptions;
use pinum_advisor::search::{SearchScope, StrategyKind};
use pinum_core::access_costs::AccessCostCatalog;
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::cache::PlanCache;
use pinum_core::{
    CandidatePool, PricingSession, Selection, WorkloadCollector, WorkloadModel, WorkloadModelParts,
};
use pinum_optimizer::Optimizer;
use pinum_query::{Query, RelIdx, RelTemplate, TemplateKey};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Knobs of the online tuning daemon.
#[derive(Debug, Clone, Copy)]
pub struct OnlineAdvisorOptions {
    /// Maximum live queries in the sliding window (count eviction).
    pub window_capacity: usize,
    /// Admissions per epoch; every epoch boundary re-advises.
    pub epoch_length: usize,
    /// Relative regression of the window's mean priced cost (vs the mean
    /// right after the last re-advise) that fires an early re-advise.
    pub drift_threshold: f64,
    /// Per-advising-round weight decay applied to every resident query
    /// (1.0 = pure count window, no decay).
    pub decay: f64,
    /// Search strategy used at re-advise time.
    pub strategy: StrategyKind,
    /// Index disk budget handed to the strategy.
    pub budget_bytes: u64,
    /// Rank candidates by benefit per byte inside the strategy.
    pub benefit_per_byte: bool,
    /// Warm-start re-advises from the previous selection and its carried
    /// priced state (the whole point; `false` keeps a cold-search mode
    /// for ablations).
    pub warm_start: bool,
    /// Scope drift-triggered re-advises to the candidates that can affect
    /// the regressed templates (needs template-attributed admissions;
    /// falls back to the full-scope search — bit-identical to the
    /// unscoped daemon — whenever attribution cannot localize the drift).
    pub scoped_readvise: bool,
    /// Relative per-template cost regression that marks a template
    /// regressed for scoping.
    pub attribution_threshold: f64,
}

impl OnlineAdvisorOptions {
    /// Sensible daemon defaults for a given budget: 256-query window,
    /// epoch of 64, 20 % drift threshold, warm-started lazy greedy,
    /// template-scoped drift re-advising at a 10 % per-template bar.
    pub fn defaults(budget_bytes: u64) -> Self {
        Self {
            window_capacity: 256,
            epoch_length: 64,
            drift_threshold: 0.2,
            decay: 1.0,
            strategy: StrategyKind::LazyGreedy,
            budget_bytes,
            benefit_per_byte: false,
            warm_start: true,
            scoped_readvise: true,
            attribution_threshold: 0.1,
        }
    }
}

/// What caused a re-advise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadviseTrigger {
    /// Epoch boundary (`epoch_length` admissions since the last one).
    Epoch,
    /// Drift detector fired early.
    Drift,
    /// Caller asked explicitly via [`OnlineAdvisor::readvise`].
    Forced,
}

/// Outcome of one re-advising round.
#[derive(Debug, Clone)]
pub struct ReadviseReport {
    pub trigger: ReadviseTrigger,
    pub wall: Duration,
    /// Exact priced cost of the *old* selection over the current window.
    pub cost_before: f64,
    /// Exact priced cost of the new selection over the current window.
    pub cost_after: f64,
    /// Indexes in the new selection.
    pub picks: usize,
    /// Workload-cost evaluations the search spent.
    pub evaluations: usize,
    /// Individual query re-pricings the search spent.
    pub queries_repriced: usize,
    /// Full workload re-pricings this round performed (search seed +
    /// session refreshes). 0 whenever the warm state was carried intact —
    /// the steady-state gate of `exp_scoped_readvise`.
    pub full_repricings: usize,
    /// Whether the search ran under a template-derived candidate mask.
    pub scoped: bool,
    /// Candidates the search was allowed to add (pool size when
    /// unscoped).
    pub scope_candidates: usize,
}

/// Outcome of one admission.
#[derive(Debug, Clone)]
pub struct Admission {
    /// Stable query id inside the streaming model (valid until the next
    /// re-advise, which may compact and renumber).
    pub qid: usize,
    /// 0-based admission ordinal — stable forever; the handle
    /// [`OnlineAdvisor::reweight`] takes.
    pub ordinal: usize,
    /// Query evicted by the window, if it overflowed.
    pub evicted: Option<usize>,
    /// Wall time of the session splice (model splice + pricing the one
    /// newcomer under the current selection).
    pub model_wall: Duration,
    /// Flattened access arms of the admitted query — the unit the splice
    /// work is proportional to (never the workload size).
    pub model_arms: usize,
    /// The re-advise this admission triggered, if any (inline specs
    /// only — a deferred spec reports via `pending` instead).
    pub readvise: Option<ReadviseReport>,
    /// The re-advise this admission *would* run, returned instead of
    /// executed because the spec was [`AdmissionSpec::deferred`]. The
    /// caller runs it via [`OnlineAdvisor::readvise_triggered`]; as long
    /// as no other mutation touches the advisor in between, the deferred
    /// execution is bit-identical to the inline one.
    pub pending: Option<ReadviseTrigger>,
}

/// One canonical admission mutation — the *only* thing
/// [`OnlineAdvisor::apply`] consumes, and (field for field) the record
/// the persistence log serializes. The builder collapses what used to be
/// five overlapping `admit_*` entry points into one spec:
///
/// ```ignore
/// advisor.apply(AdmissionSpec::new(&cache, &access)
///     .weight(2.5)
///     .templates(&keys)
///     .deferred(true));
/// ```
///
/// Defaults: weight 1.0, no templates (the query counts as
/// conservatively regressed whenever drift fires), shares derived from
/// the access catalog (each relation's cheapest arm), re-advises inline.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionSpec<'a> {
    /// The query's cached plans — one half of the paper's
    /// one-optimizer-call artifact.
    pub cache: &'a PlanCache,
    /// The query's collected access costs — the other half.
    pub access: &'a AccessCostCatalog,
    /// Workload weight (finite, > 0).
    pub weight: f64,
    /// Per-relation [`TemplateKey`]s for drift attribution (empty ⇒
    /// unattributed).
    pub templates: &'a [TemplateKey],
    /// Explicit per-template cost shares for
    /// [`SharePolicy::AccessShare`]; `None` derives them from the access
    /// catalog exactly as the legacy entry points did.
    pub shares: Option<&'a [f64]>,
    /// Defer a triggered re-advise: return it in [`Admission::pending`]
    /// instead of executing it inline (the server's budget gate).
    pub deferred: bool,
}

impl<'a> AdmissionSpec<'a> {
    /// A weight-1.0, unattributed, inline admission of one `(plan cache,
    /// access catalog)` pair.
    pub fn new(cache: &'a PlanCache, access: &'a AccessCostCatalog) -> Self {
        Self {
            cache,
            access,
            weight: 1.0,
            templates: &[],
            shares: None,
            deferred: false,
        }
    }

    /// Sets the workload weight (e.g. an observed execution frequency).
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Attaches the query's templates (as produced by
    /// [`query_templates`]) for template-scoped drift attribution.
    pub fn templates(mut self, templates: &'a [TemplateKey]) -> Self {
        self.templates = templates;
        self
    }

    /// Overrides the per-template cost shares (must be one per template).
    pub fn shares(mut self, shares: &'a [f64]) -> Self {
        self.shares = Some(shares);
        self
    }

    /// Defers any triggered re-advise to the caller.
    pub fn deferred(mut self, deferred: bool) -> Self {
        self.deferred = deferred;
        self
    }
}

/// Outcome of one [`OnlineAdvisor::reweight`] event.
#[derive(Debug, Clone)]
pub struct ReweightOutcome {
    /// Whether the reweight landed on a live resident (`false` ⇒ the
    /// target had already left the window; dropped as a counted no-op).
    pub applied: bool,
    /// The drift re-advise the hotter query triggered, executed inline
    /// (non-deferred events only).
    pub readvise: Option<ReadviseReport>,
    /// The trigger returned instead of executed (deferred events only).
    pub pending: Option<ReadviseTrigger>,
}

/// The owned artifacts [`OnlineAdvisor::collect_admission`] builds from a
/// raw [`Query`]: its PINUM plan cache, its access costs (collected
/// through the daemon's shared template cache), and its templates —
/// everything an [`AdmissionSpec`] borrows.
#[derive(Debug, Clone)]
pub struct CollectedAdmission {
    pub cache: PlanCache,
    pub access: AccessCostCatalog,
    pub templates: Vec<TemplateKey>,
}

impl CollectedAdmission {
    /// Borrows the artifacts as a spec at `weight`.
    pub fn spec(&self, weight: f64) -> AdmissionSpec<'_> {
        AdmissionSpec::new(&self.cache, &self.access)
            .weight(weight)
            .templates(&self.templates)
    }
}

/// Counters proving what the daemon did (and did not) do.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    pub admits: usize,
    pub evictions: usize,
    /// In-place reweight events applied ([`OnlineAdvisor::reweight`]).
    pub reweights: usize,
    /// Reweight events targeting an admission that had already left the
    /// window (dropped as no-ops).
    pub reweight_misses: usize,
    pub readvises: usize,
    pub epoch_readvises: usize,
    pub drift_readvises: usize,
    pub forced_readvises: usize,
    /// Re-advises that ran under a template-derived candidate mask.
    pub scoped_readvises: usize,
    /// From-scratch [`pinum_core::WorkloadModel`] builds performed after
    /// start-up. Never incremented by this implementation — the counter
    /// exists so the acceptance experiment can *assert* the online path
    /// stayed incremental.
    pub full_rebuilds: usize,
    /// Full workload re-pricings the session performed or adopted from
    /// searches. Stays 0 while warm states carry across re-advises.
    pub full_repricings: usize,
    /// Tombstone compactions (O(window) renumbering, not rebuilds —
    /// pricing is bit-identical across them).
    pub compactions: usize,
    /// Total / max flattened arms over all admissions (the O(query) work
    /// witness: these are stream properties, independent of window size).
    pub admit_arms_total: usize,
    pub admit_arms_max: usize,
    /// Optimizer calls spent on access collection by
    /// [`OnlineAdvisor::collect_admission`] — one per *new* template shape,
    /// zero for admissions whose relations all hit the shared cache.
    pub collect_calls: usize,
    /// Relation collections `collect_admission` served straight from the
    /// shared template cache.
    pub collect_template_hits: usize,
    /// Summed wall time of the session splices alone.
    pub model_admit_wall: Duration,
    /// Summed wall time of re-advising rounds.
    pub readvise_wall: Duration,
    /// Wall time of the most recent re-advising round — the steady-state
    /// latency figure `readvise_wall` (a lifetime sum) cannot express.
    pub last_readvise_wall: Duration,
}

/// Plain-data export of the daemon's complete mutable state — everything
/// the `pinum-persist` snapshot format serializes. The shared template
/// cache is deliberately **excluded**: it is a pure performance cache, so
/// a restored daemon re-collects template shapes on demand with
/// bit-identical results (its collection *counters* live in
/// [`OnlineStats`] and are restored verbatim).
#[derive(Debug, Clone)]
pub struct OnlineAdvisorParts {
    /// Streaming model export ([`pinum_core::WorkloadModel::to_parts`]).
    pub model: WorkloadModelParts,
    /// Current selection bitset words.
    pub selection_words: Vec<u64>,
    /// The session's spliced per-query priced costs.
    pub per_query: Vec<f64>,
    /// Full re-pricings the session has performed so far.
    pub full_repricings: usize,
    /// Attribution books export ([`DriftAttribution::to_parts`]).
    pub attribution: DriftAttributionParts,
    /// Live qids in admission order (front = oldest).
    pub window: Vec<u32>,
    /// Oldest admission ordinal the book below still holds.
    pub admission_base: usize,
    /// Admission ordinal − base → current qid (`u32::MAX` once evicted).
    pub admission_qid: Vec<u32>,
    /// Query slot → admission ordinal.
    pub qid_ordinal: Vec<u32>,
    /// Drift baseline: mean priced cost per live query after the last
    /// re-advise (+∞ disarms the detector).
    pub baseline_mean: f64,
    /// Admissions since the last re-advise (the epoch clock).
    pub admits_since_advise: usize,
    /// Lifetime counters, restored verbatim.
    pub stats: OnlineStats,
}

/// The epoch-based online tuning daemon. See the crate docs.
pub struct OnlineAdvisor {
    pool: CandidatePool,
    opts: OnlineAdvisorOptions,
    /// The persistent pricing session: streaming model + current
    /// selection + live priced state, spliced across the whole lifecycle.
    session: PricingSession,
    /// Shared template cache for [`Self::collect_admission`]: admissions of
    /// template-sharing queries skip access-collection optimizer calls.
    collector: WorkloadCollector,
    /// Per-template priced-cost attribution for scoped re-advising.
    attribution: DriftAttribution,
    /// Live query ids, admission order (front = oldest).
    window: VecDeque<usize>,
    /// Ordinal of the oldest admission the book below still holds;
    /// compaction retires the dead prefix so the books stay O(window)
    /// over the daemon's lifetime. Ordinals below the base are evicted
    /// by definition (they predate every live resident).
    admission_base: usize,
    /// Admission ordinal − `admission_base` → current qid (`u32::MAX`
    /// once evicted). The stable handle behind
    /// [`Self::reweight`].
    admission_qid: Vec<u32>,
    /// Query slot → admission ordinal (for eviction/compaction upkeep).
    qid_ordinal: Vec<u32>,
    /// Mean priced cost per live query right after the last re-advise
    /// (infinite before the first one, which disarms the drift detector
    /// until an epoch fires).
    baseline_mean: f64,
    admits_since_advise: usize,
    stats: OnlineStats,
}

impl OnlineAdvisor {
    /// Starts the daemon over a fixed candidate pool with an empty
    /// window and an empty selection.
    pub fn new(pool: CandidatePool, opts: OnlineAdvisorOptions) -> Self {
        assert!(opts.window_capacity >= 1, "window must hold a query");
        assert!(opts.epoch_length >= 1, "epoch must span an admission");
        assert!(
            opts.drift_threshold >= 0.0 && opts.drift_threshold.is_finite(),
            "drift threshold must be a finite non-negative ratio"
        );
        assert!(
            opts.attribution_threshold >= 0.0 && opts.attribution_threshold.is_finite(),
            "attribution threshold must be a finite non-negative ratio"
        );
        assert!(
            opts.decay > 0.0 && opts.decay <= 1.0,
            "decay must be in (0, 1]"
        );
        let session = PricingSession::new(pool.len());
        Self {
            pool,
            opts,
            session,
            collector: WorkloadCollector::new(),
            attribution: DriftAttribution::new(),
            window: VecDeque::new(),
            admission_base: 0,
            admission_qid: Vec::new(),
            qid_ordinal: Vec::new(),
            baseline_mean: f64::INFINITY,
            admits_since_advise: 0,
            stats: OnlineStats::default(),
        }
    }

    /// Applies one [`AdmissionSpec`] — **the** admission entry point.
    /// The spec's `(cache, access)` pair is the per-query artifact of
    /// the paper's one optimizer call — built by the caller (or by
    /// [`Self::collect_admission`]), spliced here in O(that query's
    /// access arms) plus one single-query pricing.
    ///
    /// An inline spec executes any triggered re-advise before returning
    /// ([`Admission::readvise`]); a [`AdmissionSpec::deferred`] spec
    /// returns the trigger in [`Admission::pending`] for the caller to
    /// run later via [`Self::readvise_triggered`] — bit-identical to the
    /// inline execution as long as no other mutation touches this
    /// advisor in between (the multi-tenant server serializes every
    /// tenant on one shard, so none does), which is how a global
    /// re-advise budget can gate *when* re-advises run without changing
    /// *what* they compute.
    pub fn apply(&mut self, spec: AdmissionSpec<'_>) -> Admission {
        let mut admission = self.splice_admission(&spec);
        if spec.deferred {
            admission.pending = self.pending_trigger();
        } else {
            admission.readvise = self.maybe_readvise();
        }
        admission
    }

    /// Applies a batch of admissions with per-spec [`Admission`] results
    /// **identical to serial [`Self::apply`] calls** (bit for bit in
    /// every deterministic field; `model_wall` is wall clock and is
    /// reported as each spec's share of the batched splice).
    ///
    /// The win is that window/drift bookkeeping runs once per
    /// *trigger-free run* instead of once per spec: a maximal prefix
    /// where no window overflow can evict (the window has room for the
    /// whole run), no epoch boundary falls inside the run, and the drift
    /// detector either is disarmed (no baseline yet) or can only *report*
    /// (every spec in the run is deferred — a fired drift becomes
    /// [`Admission::pending`] without mutating state, so per-spec checks
    /// can be replayed retroactively from the spliced sum tree). Such a
    /// run splices through [`PricingSession::admit_batch`] — one model
    /// maintenance pass, one tree extension. Specs outside a run (an
    /// inline spec under an armed detector, a spec landing on an epoch
    /// boundary, a window-overflow eviction) fall back to serial
    /// [`Self::apply`], so triggers still fire at exactly the serial
    /// positions.
    pub fn apply_batch(&mut self, specs: &[AdmissionSpec<'_>]) -> Vec<Admission> {
        let mut out = Vec::with_capacity(specs.len());
        let mut rest = specs;
        while !rest.is_empty() {
            let k = self.trigger_free_run(rest, true);
            if k >= 2 {
                self.splice_run(&rest[..k], &mut out);
                rest = &rest[k..];
            } else {
                out.push(self.apply(rest[0]));
                rest = &rest[1..];
            }
        }
        out
    }

    /// [`Self::apply_batch`] for callers that gate re-advises behind an
    /// external budget (the multi-tenant server): `spec.deferred` is
    /// ignored and every triggered re-advise executes inline under a
    /// guard obtained from `acquire` — the guard is held for the whole
    /// re-advise, exactly like the serial server path's budget permit.
    /// Because fired triggers mutate state here, a trigger-free run
    /// additionally requires the drift detector to be disarmed; armed
    /// stretches degrade to serial applies with identical results.
    pub fn apply_batch_gated<G>(
        &mut self,
        specs: &[AdmissionSpec<'_>],
        mut acquire: impl FnMut(ReadviseTrigger) -> G,
    ) -> Vec<Admission> {
        let mut out = Vec::with_capacity(specs.len());
        let mut rest = specs;
        while !rest.is_empty() {
            let k = self.trigger_free_run(rest, false);
            if k >= 2 {
                self.splice_run(&rest[..k], &mut out);
                rest = &rest[k..];
            } else {
                let mut admission = self.splice_admission(&rest[0]);
                if let Some(trigger) = self.pending_trigger() {
                    let _permit = acquire(trigger);
                    admission.readvise = Some(self.readvise_with(trigger));
                }
                out.push(admission);
                rest = &rest[1..];
            }
        }
        out
    }

    /// Length of the maximal trigger-free run at the head of `specs`:
    /// the window can absorb the whole run without overflow, no spec
    /// lands on an epoch boundary, and a fired drift either cannot
    /// happen (baseline disarmed) or cannot mutate
    /// (`allow_deferred_drift` and every spec deferred).
    fn trigger_free_run(&self, specs: &[AdmissionSpec<'_>], allow_deferred_drift: bool) -> usize {
        let window_room = self.opts.window_capacity.saturating_sub(self.window.len());
        let epoch_room = (self.opts.epoch_length - 1).saturating_sub(self.admits_since_advise);
        let k = specs.len().min(window_room).min(epoch_room);
        if !self.baseline_mean.is_finite() {
            return k;
        }
        if allow_deferred_drift {
            specs.iter().take(k).take_while(|s| s.deferred).count()
        } else {
            0
        }
    }

    /// Splices a trigger-free run through one batched session admission,
    /// appending one [`Admission`] per spec to `out`. Per-spec drift
    /// *reports* (the armed, all-deferred case) are recomputed
    /// retroactively: the drift check for spec `i` compares against the
    /// sum tree with every later newcomer's leaf overlaid to 0.0 — the
    /// tree is a pure function of its leaves and contributions are
    /// non-negative, so the overlay reproduces the serial intermediate
    /// total bit for bit.
    fn splice_run(&mut self, specs: &[AdmissionSpec<'_>], out: &mut Vec<Admission>) {
        let splice = Instant::now();
        let queries: Vec<(&PlanCache, &AccessCostCatalog, f64)> = specs
            .iter()
            .map(|s| (s.cache, s.access, s.weight))
            .collect();
        let first = self.session.admit_batch(&queries);
        let model_wall = splice.elapsed();
        let base = out.len();
        for (i, spec) in specs.iter().enumerate() {
            let qid = first + i;
            let model_arms = self.session.model().query_arm_count(qid);
            let ordinal = self.admission_base + self.admission_qid.len();
            self.stats.admits += 1;
            self.stats.admit_arms_total += model_arms;
            self.stats.admit_arms_max = self.stats.admit_arms_max.max(model_arms);
            self.window.push_back(qid);
            debug_assert_eq!(self.qid_ordinal.len(), qid);
            self.admission_qid.push(qid as u32);
            self.qid_ordinal.push(ordinal as u32);
            if let Some(shares) = spec.shares {
                self.attribution
                    .admit_with_shares(qid, spec.templates, shares);
            } else if spec.templates.len() == spec.access.per_rel().len() {
                let derived: Vec<f64> = spec
                    .access
                    .per_rel()
                    .iter()
                    .map(|entries| entries.first().map_or(0.0, |e| e.cost))
                    .collect();
                self.attribution
                    .admit_with_shares(qid, spec.templates, &derived);
            } else {
                self.attribution.admit(qid, spec.templates);
            }
            self.admits_since_advise += 1;
            out.push(Admission {
                qid,
                ordinal,
                evicted: None,
                model_wall: model_wall / specs.len() as u32,
                model_arms,
                readvise: None,
                pending: None,
            });
        }
        self.stats.model_admit_wall += model_wall;
        if self.baseline_mean.is_finite() {
            // Armed detector, all specs deferred: replay each serial
            // intermediate drift check from the final tree.
            for i in 0..specs.len() {
                let later: Vec<(u32, f64)> = ((first + i + 1)..(first + specs.len()))
                    .map(|q| (q as u32, 0.0))
                    .collect();
                let total = self.session.state().overlaid_total(&later);
                let window_len = self.window.len() - (specs.len() - 1 - i);
                if self.drift_fired_at(total, window_len) {
                    out[base + i].pending = Some(ReadviseTrigger::Drift);
                }
            }
        }
    }

    /// Builds the owned [`AdmissionSpec`] artifacts for a raw query:
    /// its PINUM plan cache (two optimizer calls), its access costs
    /// collected through the daemon's shared template cache, and its
    /// templates.
    ///
    /// The collection side is where streaming admission meets batched
    /// collection: an admission whose relations all match templates seen
    /// earlier in the stream pays **zero** collection calls
    /// ([`OnlineStats::collect_calls`] counts the exceptions), and the
    /// spliced model is bit-identical to one built from a dedicated
    /// per-query `collect_pinum` call — the collector debug-asserts that
    /// on every admission.
    pub fn collect_admission(
        &mut self,
        optimizer: &Optimizer<'_>,
        query: &Query,
        builder: &BuilderOptions,
    ) -> CollectedAdmission {
        let built = build_cache_pinum(optimizer, query, builder);
        let (access, cstats) = self.collector.collect(optimizer, query, &self.pool);
        self.stats.collect_calls += cstats.optimizer_calls;
        self.stats.collect_template_hits += query.relation_count() - cstats.optimizer_calls;
        CollectedAdmission {
            cache: built.cache,
            access,
            templates: query_templates(query),
        }
    }

    /// Admits one arriving query (weight 1.0, no template attribution).
    #[deprecated(since = "0.2.0", note = "use `AdmissionSpec::new` + `apply`")]
    pub fn admit(&mut self, cache: &PlanCache, access: &AccessCostCatalog) -> Admission {
        self.apply(AdmissionSpec::new(cache, access))
    }

    /// Admission with an explicit workload weight.
    #[deprecated(
        since = "0.2.0",
        note = "use `AdmissionSpec::new(..).weight(w)` + `apply`"
    )]
    pub fn admit_weighted(
        &mut self,
        cache: &PlanCache,
        access: &AccessCostCatalog,
        weight: f64,
    ) -> Admission {
        self.apply(AdmissionSpec::new(cache, access).weight(weight))
    }

    /// From-scratch admission of a raw query.
    #[deprecated(since = "0.2.0", note = "use `collect_admission` + `apply`")]
    pub fn admit_collected(
        &mut self,
        optimizer: &Optimizer<'_>,
        query: &Query,
        builder: &BuilderOptions,
        weight: f64,
    ) -> Admission {
        let collected = self.collect_admission(optimizer, query, builder);
        self.apply(collected.spec(weight))
    }

    /// Weighted, template-attributed admission.
    #[deprecated(
        since = "0.2.0",
        note = "use `AdmissionSpec::new(..).weight(w).templates(t)` + `apply`"
    )]
    pub fn admit_attributed(
        &mut self,
        cache: &PlanCache,
        access: &AccessCostCatalog,
        weight: f64,
        templates: &[TemplateKey],
    ) -> Admission {
        self.apply(
            AdmissionSpec::new(cache, access)
                .weight(weight)
                .templates(templates),
        )
    }

    /// Attributed admission with the re-advise deferred.
    #[deprecated(
        since = "0.2.0",
        note = "use `AdmissionSpec::new(..).deferred(true)` + `apply`; the trigger is `Admission::pending`"
    )]
    pub fn admit_attributed_deferred(
        &mut self,
        cache: &PlanCache,
        access: &AccessCostCatalog,
        weight: f64,
        templates: &[TemplateKey],
    ) -> (Admission, Option<ReadviseTrigger>) {
        let admission = self.apply(
            AdmissionSpec::new(cache, access)
                .weight(weight)
                .templates(templates)
                .deferred(true),
        );
        let pending = admission.pending;
        (admission, pending)
    }

    fn splice_admission(&mut self, spec: &AdmissionSpec<'_>) -> Admission {
        let AdmissionSpec {
            cache,
            access,
            weight,
            templates,
            shares,
            deferred: _,
        } = *spec;
        // --- Session splice: O(this query's arms) + pricing the one
        // newcomer under the current selection — never an O(window)
        // *re-pricing* (an overflow eviction below re-sums the priced
        // state, which is O(window) float additions, nothing priced). ---
        let splice = Instant::now();
        let qid = self.session.admit_query_weighted(cache, access, weight);
        let model_wall = splice.elapsed();
        let model_arms = self.session.model().query_arm_count(qid);
        let ordinal = self.admission_base + self.admission_qid.len();
        self.stats.admits += 1;
        self.stats.model_admit_wall += model_wall;
        self.stats.admit_arms_total += model_arms;
        self.stats.admit_arms_max = self.stats.admit_arms_max.max(model_arms);
        self.window.push_back(qid);
        debug_assert_eq!(self.qid_ordinal.len(), qid);
        self.admission_qid.push(qid as u32);
        self.qid_ordinal.push(ordinal as u32);
        // Per-relation access-cost shares for SharePolicy::AccessShare:
        // explicit when the spec carried them, else each relation's
        // cheapest access arm (entries are sorted ascending)
        // approximates its slice of the query's cost. When neither holds
        // — no override and the template list doesn't line up
        // one-per-relation — the attribution falls back to the even
        // split.
        if let Some(shares) = shares {
            self.attribution.admit_with_shares(qid, templates, shares);
        } else if templates.len() == access.per_rel().len() {
            let derived: Vec<f64> = access
                .per_rel()
                .iter()
                .map(|entries| entries.first().map_or(0.0, |e| e.cost))
                .collect();
            self.attribution.admit_with_shares(qid, templates, &derived);
        } else {
            self.attribution.admit(qid, templates);
        }

        // --- Window overflow: retract the oldest resident. ---
        let evicted = if self.window.len() > self.opts.window_capacity {
            let oldest = self.window.pop_front().expect("window non-empty");
            self.retract(oldest);
            Some(oldest)
        } else {
            None
        };

        self.admits_since_advise += 1;
        Admission {
            qid,
            ordinal,
            evicted,
            model_wall,
            model_arms,
            readvise: None,
            pending: None,
        }
    }

    /// Removes one query from the session, the attribution books, and the
    /// ordinal map (the window entry is the caller's to drop).
    fn retract(&mut self, qid: usize) {
        self.session.evict_query(qid);
        self.attribution.evict(qid);
        self.admission_qid[self.qid_ordinal[qid] as usize - self.admission_base] = u32::MAX;
        self.stats.evictions += 1;
    }

    /// Applies an in-place reweight event — "the query admitted as
    /// ordinal `admission` now runs at `weight`" — re-pricing exactly
    /// that query. If the hotter query pushed the monitor past the drift
    /// threshold, the triggered re-advise executes inline
    /// ([`ReweightOutcome::readvise`]) unless `deferred`, in which case
    /// the trigger is returned in [`ReweightOutcome::pending`] for
    /// [`Self::readvise_triggered`] (same contract as a deferred
    /// [`AdmissionSpec`]). Reweights do not advance the epoch clock. An
    /// event whose target has already slid out of the window is dropped
    /// as a counted no-op ([`OnlineStats::reweight_misses`]); an ordinal
    /// that was **never issued** is a caller bug and panics with a
    /// descriptive message.
    pub fn reweight(&mut self, admission: usize, weight: f64, deferred: bool) -> ReweightOutcome {
        let Some(qid) = self.resolve_ordinal(admission, "reweighting") else {
            self.stats.reweight_misses += 1;
            return ReweightOutcome {
                applied: false,
                readvise: None,
                pending: None,
            };
        };
        self.session.reweight_query(qid, weight);
        self.stats.reweights += 1;
        let trigger = self.drift_fired().then_some(ReadviseTrigger::Drift);
        if deferred {
            ReweightOutcome {
                applied: true,
                readvise: None,
                pending: trigger,
            }
        } else {
            ReweightOutcome {
                applied: true,
                readvise: trigger.map(|t| self.readvise_with(t)),
                pending: None,
            }
        }
    }

    /// In-place reweight with the re-advise inline.
    #[deprecated(since = "0.2.0", note = "use `reweight(admission, weight, false)`")]
    pub fn reweight_admission(&mut self, admission: usize, weight: f64) -> Option<ReadviseReport> {
        self.reweight(admission, weight, false).readvise
    }

    /// In-place reweight with the re-advise deferred.
    #[deprecated(since = "0.2.0", note = "use `reweight(admission, weight, true)`")]
    pub fn reweight_admission_deferred(
        &mut self,
        admission: usize,
        weight: f64,
    ) -> (bool, Option<ReadviseTrigger>) {
        let outcome = self.reweight(admission, weight, true);
        (outcome.applied, outcome.pending)
    }

    /// Evicts the query admitted as ordinal `admission` from the window
    /// right now (ahead of the sliding window retiring it) — e.g. a
    /// tenant retracting a statement it no longer runs. Returns whether a
    /// live resident was evicted; a target that already slid out is a
    /// no-op, and an ordinal that was never issued panics like
    /// [`Self::reweight`]. Evictions never trigger a re-advise
    /// and do not advance the epoch clock; the next admission or
    /// reweight re-reads the drift monitor as usual.
    pub fn evict_admission(&mut self, admission: usize) -> bool {
        let Some(qid) = self.resolve_ordinal(admission, "evicting") else {
            return false;
        };
        let pos = self
            .window
            .iter()
            .position(|&w| w == qid)
            .expect("live qid must be in the window");
        self.window.remove(pos);
        self.retract(qid);
        true
    }

    /// Ordinal → live qid, or `None` when the admission has left the
    /// window (ordinals below the compaction base are evicted by
    /// definition). A never-issued ordinal is a caller bug and panics.
    fn resolve_ordinal(&self, admission: usize, verb: &str) -> Option<usize> {
        if admission < self.admission_base {
            return None;
        }
        let issued = self.admission_base + self.admission_qid.len();
        let qid = *self
            .admission_qid
            .get(admission - self.admission_base)
            .unwrap_or_else(|| {
                panic!("{verb} unknown admission ordinal {admission} (only {issued} issued)")
            });
        if qid == u32::MAX {
            None
        } else {
            Some(qid as usize)
        }
    }

    /// Whether the window's mean priced cost has regressed past the
    /// threshold (written so a NaN mean — possible only if the state
    /// were corrupted — also fires and self-heals on the re-advise).
    fn drift_fired(&self) -> bool {
        self.drift_fired_at(self.session.total(), self.window.len())
    }

    /// [`Self::drift_fired`] against an explicit total and window length
    /// — the batched admission path replays intermediate checks through
    /// this with overlaid tree totals.
    fn drift_fired_at(&self, total: f64, window_len: usize) -> bool {
        if window_len == 0 || !self.baseline_mean.is_finite() {
            return false;
        }
        let mean_now = total / window_len as f64;
        let bound = self.baseline_mean * (1.0 + self.opts.drift_threshold);
        // Fires on Greater *and* on NaN (incomparable) — an unpriceable
        // window must trigger the re-advise that can heal it.
        !matches!(
            mean_now.partial_cmp(&bound),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )
    }

    /// The re-advise the daemon would run right now, if any: epoch
    /// boundaries outrank the drift detector. Pure read — the deferred
    /// admission/reweight entry points return this for the caller to
    /// execute later.
    fn pending_trigger(&self) -> Option<ReadviseTrigger> {
        if self.admits_since_advise >= self.opts.epoch_length {
            Some(ReadviseTrigger::Epoch)
        } else if self.drift_fired() {
            Some(ReadviseTrigger::Drift)
        } else {
            None
        }
    }

    fn maybe_readvise(&mut self) -> Option<ReadviseReport> {
        self.pending_trigger().map(|t| self.readvise_with(t))
    }

    /// Forces a re-advising round right now (callers use this to flush a
    /// warm-up batch; the daemon itself re-advises on epochs and drift).
    pub fn readvise(&mut self) -> ReadviseReport {
        self.readvise_with(ReadviseTrigger::Forced)
    }

    /// Executes a re-advise previously deferred by an
    /// [`AdmissionSpec::deferred`] admission or a deferred
    /// [`Self::reweight`], under the returned trigger.
    /// Bit-identical to the inline execution provided no other mutation
    /// touched the advisor since the trigger was computed.
    pub fn readvise_triggered(&mut self, trigger: ReadviseTrigger) -> ReadviseReport {
        self.readvise_with(trigger)
    }

    fn readvise_with(&mut self, trigger: ReadviseTrigger) -> ReadviseReport {
        let start = Instant::now();
        let fulls_before = self.session.full_repricings();
        // Tombstone hygiene: once dead slots outnumber live ones, compact
        // so pricing state stays O(window) over the daemon's whole
        // lifetime instead of O(admissions ever). Totals are bit-identical
        // across compaction (tombstones price to exactly 0.0), so this
        // changes nothing observable but memory.
        let model = self.session.model();
        if model.query_count() - model.live_query_count() > model.live_query_count() {
            self.compact();
        }
        // Weight decay: every resident fades one round before re-selection
        // sees the window (no-op at decay = 1.0; each fade re-prices only
        // its own query).
        if self.opts.decay < 1.0 {
            // Batched: every resident re-priced once, the total re-summed
            // once — O(window), not O(window²).
            let decay = self.opts.decay;
            let model = self.session.model();
            let updates: Vec<(usize, f64)> = self
                .window
                .iter()
                .map(|&qid| (qid, (model.weight(qid) * decay).max(f64::MIN_POSITIVE)))
                .collect();
            self.session.reweight_queries(updates);
        }
        let cost_before = self.session.total();

        // Scope: when drift fired and attribution can pin it on specific
        // templates, restrict the search to candidates that can affect
        // the regressed queries (inverted index ∩ regressed set) — and
        // scope the *pricing* itself: the regressed set rides into the
        // search as a query mask, so probes re-price only the queries
        // that drifted (accepted moves re-derive exact totals).
        let regressed: Option<Vec<u32>> = if trigger == ReadviseTrigger::Drift
            && self.opts.scoped_readvise
            && self.opts.warm_start
        {
            self.attribution
                .regressed_queries(self.session.state(), self.opts.attribution_threshold)
        } else {
            None
        };
        let mask: Option<Selection> = regressed.as_ref().map(|r| self.scope_mask(r));

        let gopts = GreedyOptions {
            budget_bytes: self.opts.budget_bytes,
            benefit_per_byte: self.opts.benefit_per_byte,
        };
        let strategy = self.opts.strategy.build();
        let result = if self.opts.warm_start {
            // The tentpole handoff: the session's exact priced state
            // rides into the search, so a steady-state re-advise prices
            // nothing it does not have to. Batched probes fan out over
            // the persistent process-global worker pool (the scope
            // default), reused across every re-advise.
            let mut scope = SearchScope::all().with_warm_state(self.session.state());
            if let Some(mask) = &mask {
                scope.mask = Some(mask);
            }
            if let Some(regressed) = &regressed {
                scope = scope.with_query_mask(regressed);
            }
            strategy.search_scoped(
                &self.pool,
                self.session.model(),
                &gopts,
                self.session.selection(),
                &scope,
            )
        } else {
            strategy.search(&self.pool, self.session.model(), &gopts)
        };
        let scoped = mask.is_some();
        let scope_candidates = mask.as_ref().map_or(self.pool.len(), Selection::len);

        // Adopt the search outcome — selection and exact priced state —
        // without re-pricing; the monitor baseline resets from it.
        self.session
            .install(result.selection, result.final_state, result.full_repricings);
        let cost_after = self.session.total();
        self.baseline_mean = if self.window.is_empty() {
            f64::INFINITY
        } else {
            cost_after / self.window.len() as f64
        };
        self.attribution.capture_baseline(self.session.state());
        self.admits_since_advise = 0;

        let wall = start.elapsed();
        self.stats.readvises += 1;
        self.stats.readvise_wall += wall;
        self.stats.last_readvise_wall = wall;
        self.stats.full_repricings = self.session.full_repricings();
        if scoped {
            self.stats.scoped_readvises += 1;
        }
        match trigger {
            ReadviseTrigger::Epoch => self.stats.epoch_readvises += 1,
            ReadviseTrigger::Drift => self.stats.drift_readvises += 1,
            ReadviseTrigger::Forced => self.stats.forced_readvises += 1,
        }
        ReadviseReport {
            trigger,
            wall,
            cost_before,
            cost_after,
            picks: result.picked.len(),
            evaluations: result.evaluations,
            queries_repriced: result.queries_repriced,
            full_repricings: self.session.full_repricings() - fulls_before,
            scoped,
            scope_candidates,
        }
    }

    /// The candidate mask for a regressed query set: every candidate
    /// whose inverted-index entry intersects the set (it can change a
    /// regressed query's price), plus the current selection's members
    /// (so drops and swap-backs stay in play).
    fn scope_mask(&self, regressed: &[u32]) -> Selection {
        let model = self.session.model();
        let mut mask = Selection::empty(self.pool.len());
        for cand in 0..self.pool.len() {
            if sorted_intersects(model.affected(cand), regressed) {
                mask.insert(cand);
            }
        }
        for id in self.session.selection().ids() {
            mask.insert(id);
        }
        mask
    }

    /// Drops eviction tombstones from the session; window ids, the
    /// attribution books, and the ordinal maps are remapped, so behaviour
    /// is unchanged. Runs automatically at re-advise time whenever
    /// tombstones outnumber live queries (which renumbers query ids —
    /// treat an [`Admission`]'s `qid` as valid only until the next
    /// re-advise; `ordinal` is the stable handle), and stays public for
    /// callers who want memory back sooner.
    pub fn compact(&mut self) {
        self.stats.compactions += 1;
        let remap = self.session.compact();
        self.attribution.remap(&remap);
        for qid in self.window.iter_mut() {
            let new = remap[*qid];
            debug_assert_ne!(new, u32::MAX, "window held an evicted query");
            *qid = new as usize;
        }
        let mut qid_ordinal = vec![u32::MAX; self.session.model().query_count()];
        for (old, &new) in remap.iter().enumerate() {
            let ordinal = self.qid_ordinal[old];
            if new != u32::MAX {
                qid_ordinal[new as usize] = ordinal;
                self.admission_qid[ordinal as usize - self.admission_base] = new;
            }
        }
        self.qid_ordinal = qid_ordinal;
        // Retire the admission book's dead prefix: every ordinal below
        // the oldest live resident's is evicted by definition, so the
        // base moves up and the books stay O(window) for the daemon's
        // whole lifetime (retired ordinals keep reporting misses).
        let new_base = self
            .window
            .front()
            .map_or(self.admission_base + self.admission_qid.len(), |&q| {
                self.qid_ordinal[q] as usize
            });
        self.admission_qid.drain(..new_base - self.admission_base);
        self.admission_base = new_base;
    }

    /// Exact priced cost of the current selection over the live window —
    /// read from the session's spliced state (no re-pricing).
    pub fn current_cost(&self) -> f64 {
        self.session.total()
    }

    /// Alias of [`Self::current_cost`] kept for the monitor-centric
    /// callers: with the persistent session, what the drift detector
    /// sees *is* the exact priced state.
    pub fn monitored_cost(&self) -> f64 {
        self.session.total()
    }

    pub fn selection(&self) -> &Selection {
        self.session.selection()
    }

    pub fn model(&self) -> &pinum_core::WorkloadModel {
        self.session.model()
    }

    /// The persistent pricing session the daemon runs on.
    pub fn session(&self) -> &PricingSession {
        &self.session
    }

    /// The drift-attribution books behind scoped re-advising.
    pub fn attribution(&self) -> &DriftAttribution {
        &self.attribution
    }

    /// Switches how multi-template queries split their priced cost
    /// across templates (see [`attribution::SharePolicy`]).
    pub fn set_share_policy(&mut self, policy: attribution::SharePolicy) {
        self.attribution.set_share_policy(policy);
    }

    pub fn pool(&self) -> &CandidatePool {
        &self.pool
    }

    pub fn options(&self) -> &OnlineAdvisorOptions {
        &self.opts
    }

    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Live query ids in admission order (front = oldest). Ids are valid
    /// until the next re-advise (compaction renumbers).
    pub fn window_ids(&self) -> Vec<usize> {
        self.window.iter().copied().collect()
    }

    /// The admission-ordinal book's live span `(base, next)`: ordinals
    /// below `base` were retired by compaction (reweights targeting them
    /// report misses), `next` is the ordinal the next admission gets.
    /// `next - base` stays O(window) over the daemon's lifetime.
    pub fn admission_book_span(&self) -> (usize, usize) {
        (
            self.admission_base,
            self.admission_base + self.admission_qid.len(),
        )
    }

    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Exports the daemon's complete mutable state as plain flat arrays
    /// (see [`OnlineAdvisorParts`] for what is — and is not — included).
    pub fn to_parts(&self) -> OnlineAdvisorParts {
        OnlineAdvisorParts {
            model: self.session.model().to_parts(),
            selection_words: self.session.selection().words().to_vec(),
            per_query: self.session.state().per_query().to_vec(),
            full_repricings: self.session.full_repricings(),
            attribution: self.attribution.to_parts(),
            window: self.window.iter().map(|&q| q as u32).collect(),
            admission_base: self.admission_base,
            admission_qid: self.admission_qid.clone(),
            qid_ordinal: self.qid_ordinal.clone(),
            baseline_mean: self.baseline_mean,
            admits_since_advise: self.admits_since_advise,
            stats: self.stats.clone(),
        }
    }

    /// Rebuilds a daemon from [`Self::to_parts`] output over the same
    /// candidate pool and options, **bit-identical** to the exported
    /// daemon: same selection and priced bits, same counters, and the
    /// restore itself performs zero full re-pricings (the priced state is
    /// adopted, the pairwise tree rebuilt as the pure function of the
    /// per-query costs it is). Validates every cross-array invariant and
    /// returns an error — never panics — on inconsistent or hostile
    /// input. The shared template cache starts empty.
    pub fn from_parts(
        pool: CandidatePool,
        opts: OnlineAdvisorOptions,
        parts: OnlineAdvisorParts,
    ) -> Result<Self, &'static str> {
        if opts.window_capacity < 1
            || opts.epoch_length < 1
            || !(opts.drift_threshold >= 0.0 && opts.drift_threshold.is_finite())
            || !(opts.attribution_threshold >= 0.0 && opts.attribution_threshold.is_finite())
            || !(opts.decay > 0.0 && opts.decay <= 1.0)
        {
            return Err("invalid daemon options");
        }
        let OnlineAdvisorParts {
            model,
            selection_words,
            per_query,
            full_repricings,
            attribution,
            window,
            admission_base,
            admission_qid,
            qid_ordinal,
            baseline_mean,
            admits_since_advise,
            stats,
        } = parts;
        if baseline_mean.is_nan() {
            return Err("drift baseline is NaN");
        }
        // Cross-array bookkeeping invariants, checked against the raw
        // parts before any of them is consumed.
        let query_count = model.query_plan_start.len();
        if qid_ordinal.len() != query_count {
            return Err("ordinal map sized for a different model");
        }
        if attribution.per_query.len() != query_count {
            return Err("attribution books sized for a different model");
        }
        let live_count = model.live.iter().filter(|&&l| l).count();
        if window.len() != live_count || window.len() > opts.window_capacity {
            return Err("window does not match the model's live set");
        }
        if admission_base + admission_qid.len() != stats.admits {
            return Err("admission book does not end at the admission counter");
        }
        for (off, &q) in admission_qid.iter().enumerate() {
            if q == u32::MAX {
                continue;
            }
            let q = q as usize;
            if q >= query_count || !model.live[q] || qid_ordinal[q] as usize != admission_base + off
            {
                return Err("admission book does not round-trip through the ordinal map");
            }
        }
        let mut prev_ordinal = None;
        let mut seen = vec![false; query_count];
        for &q in &window {
            let q = q as usize;
            if q >= query_count || !model.live[q] || seen[q] {
                return Err("window holds a dead, duplicate, or out-of-range query");
            }
            seen[q] = true;
            let ordinal = qid_ordinal[q] as usize;
            if ordinal < admission_base
                || ordinal - admission_base >= admission_qid.len()
                || admission_qid[ordinal - admission_base] as usize != q
            {
                return Err("a resident's ordinal does not resolve back to it");
            }
            if prev_ordinal.is_some_and(|p| ordinal <= p) {
                return Err("window is not in admission order");
            }
            prev_ordinal = Some(ordinal);
        }
        let model = WorkloadModel::from_parts(model)?;
        if model.pool_size() != pool.len() {
            return Err("model built over a different candidate pool");
        }
        let selection = Selection::from_words(pool.len(), selection_words)?;
        let session = PricingSession::restore(model, selection, per_query, full_repricings)?;
        let attribution = DriftAttribution::from_parts(attribution)?;
        Ok(Self {
            pool,
            opts,
            session,
            collector: WorkloadCollector::new(),
            attribution,
            window: window.into_iter().map(|q| q as usize).collect(),
            admission_base,
            admission_qid,
            qid_ordinal,
            baseline_mean,
            admits_since_advise,
            stats,
        })
    }

    /// The shared template cache behind [`Self::collect_admission`].
    pub fn collector(&self) -> &WorkloadCollector {
        &self.collector
    }
}

/// The [`TemplateKey`]s of every relation of `query` — the attribution
/// payload for [`AdmissionSpec::templates`].
pub fn query_templates(query: &Query) -> Vec<TemplateKey> {
    (0..query.relation_count() as RelIdx)
        .map(|rel| RelTemplate::of(query, rel).key())
        .collect()
}

/// Whether two ascending id lists share an element (two-pointer walk).
fn sorted_intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_advisor::candidates::generate_candidates;
    use pinum_core::access_costs::collect_pinum;
    use pinum_core::builder::{build_cache_pinum, BuilderOptions};
    use pinum_optimizer::Optimizer;
    use pinum_query::Query;
    use pinum_workload::drift::{DriftProfile, DriftStream};
    use pinum_workload::star::StarSchema;

    const BUDGET: u64 = 1 << 30;

    /// Small drifting stream plus the pool/caches both tests and the
    /// bench experiment style of consumption need.
    #[allow(clippy::type_complexity)]
    fn fixture(
        phases: usize,
        phase_length: usize,
    ) -> (
        StarSchema,
        Vec<(Query, f64)>,
        CandidatePool,
        Vec<(PlanCache, AccessCostCatalog)>,
    ) {
        let schema = StarSchema::generate(42, 0.001);
        let profile = DriftProfile {
            phases,
            phase_length,
            edge_window: 3,
            churn: 0.05,
            growth_per_phase: 1.0,
        };
        let stream: Vec<_> = DriftStream::new(&schema, 9, profile).collect();
        let queries: Vec<(Query, f64)> = stream.into_iter().map(|d| (d.query, d.weight)).collect();
        let only: Vec<Query> = queries.iter().map(|(q, _)| q.clone()).collect();
        let pool = generate_candidates(&schema.catalog, &only);
        let optimizer = Optimizer::new(&schema.catalog);
        let models = only
            .iter()
            .map(|q| {
                let built = build_cache_pinum(&optimizer, q, &BuilderOptions::default());
                let (access, _) = collect_pinum(&optimizer, q, &pool);
                (built.cache, access)
            })
            .collect();
        (schema, queries, pool, models)
    }

    fn opts(window: usize, epoch: usize) -> OnlineAdvisorOptions {
        OnlineAdvisorOptions {
            window_capacity: window,
            epoch_length: epoch,
            ..OnlineAdvisorOptions::defaults(BUDGET)
        }
    }

    #[test]
    fn window_capacity_is_enforced() {
        let (_s, queries, pool, models) = fixture(2, 10);
        let mut advisor = OnlineAdvisor::new(pool, opts(8, 5));
        for (i, (c, a)) in models.iter().enumerate() {
            let adm = advisor.apply(AdmissionSpec::new(c, a).weight(queries[i].1));
            assert_eq!(adm.evicted.is_some(), i >= 8);
            assert_eq!(adm.ordinal, i);
            assert!(advisor.window_len() <= 8);
        }
        assert_eq!(advisor.window_len(), 8);
        assert_eq!(advisor.model().live_query_count(), 8);
        assert_eq!(advisor.stats().admits, 20);
        assert_eq!(advisor.stats().evictions, 12);
    }

    #[test]
    fn epochs_readvise_on_schedule() {
        let (_s, _q, pool, models) = fixture(2, 10);
        // Disarm the drift detector so the epoch schedule is exact.
        let mut advisor = OnlineAdvisor::new(
            pool,
            OnlineAdvisorOptions {
                drift_threshold: 1e18,
                ..opts(16, 5)
            },
        );
        let mut at = Vec::new();
        for (i, (c, a)) in models.iter().enumerate() {
            if let Some(r) = advisor.apply(AdmissionSpec::new(c, a)).readvise {
                assert_eq!(r.trigger, ReadviseTrigger::Epoch);
                at.push(i);
            }
        }
        assert_eq!(at, vec![4, 9, 14, 19], "epoch boundaries off schedule");
        assert_eq!(advisor.stats().epoch_readvises, 4);
        assert_eq!(advisor.stats().readvises, 4);
    }

    #[test]
    fn readvise_never_leaves_a_worse_selection() {
        let (_s, _q, pool, models) = fixture(3, 8);
        let mut advisor = OnlineAdvisor::new(pool, opts(12, 6));
        for (c, a) in &models {
            if let Some(r) = advisor.apply(AdmissionSpec::new(c, a)).readvise {
                assert!(
                    r.cost_after <= r.cost_before * (1.0 + 1e-12)
                        || (r.cost_after.is_finite() && r.cost_before.is_infinite()),
                    "re-advise regressed: {} -> {}",
                    r.cost_before,
                    r.cost_after
                );
            }
        }
    }

    #[test]
    fn daemon_never_rebuilds_the_model() {
        let (_s, _q, pool, models) = fixture(2, 12);
        let mut advisor = OnlineAdvisor::new(pool, opts(10, 4));
        for (c, a) in &models {
            advisor.apply(AdmissionSpec::new(c, a));
        }
        assert_eq!(advisor.stats().full_rebuilds, 0);
        assert!(advisor.stats().admit_arms_max > 0);
        assert!(advisor.stats().readvises > 0);
    }

    #[test]
    fn steady_state_readvises_never_fully_reprice() {
        let (_s, _q, pool, models) = fixture(2, 12);
        let mut advisor = OnlineAdvisor::new(pool, opts(10, 4));
        let mut total_fulls = 0usize;
        let mut steady = 0usize;
        for (c, a) in &models {
            if let Some(r) = advisor.apply(AdmissionSpec::new(c, a)).readvise {
                total_fulls += r.full_repricings;
                // A round that kept the selection (picks unchanged is not
                // directly visible here, but zero full re-pricings must
                // hold for *every* warm-started round of this daemon).
                assert_eq!(
                    r.full_repricings, 0,
                    "warm-started re-advise performed a full re-pricing"
                );
                steady += 1;
            }
        }
        assert!(steady > 0, "no re-advise fired");
        assert_eq!(total_fulls, 0);
        assert_eq!(advisor.stats().full_repricings, 0);
        assert_eq!(advisor.session().full_repricings(), 0);
    }

    #[test]
    fn admit_collected_is_bit_identical_to_cold_collection() {
        let (schema, queries, pool, models) = fixture(2, 12);
        let optimizer = Optimizer::new(&schema.catalog);
        let builder = BuilderOptions::default();

        // Scoping off for both daemons: this test is about *collection*
        // bit-identity, and only the shared daemon carries templates.
        let o = OnlineAdvisorOptions {
            scoped_readvise: false,
            ..opts(10, 4)
        };
        // Reference daemon: cold per-query collect_pinum artifacts.
        let mut cold = OnlineAdvisor::new(pool.clone(), o);
        // Streaming daemon: collection through the shared template cache.
        let mut shared = OnlineAdvisor::new(pool.clone(), o);
        let mut rels_total = 0usize;
        for (i, (c, a)) in models.iter().enumerate() {
            let (query, weight) = &queries[i];
            rels_total += query.relation_count();
            let adm_cold = cold.apply(AdmissionSpec::new(c, a).weight(*weight));
            let collected = shared.collect_admission(&optimizer, query, &builder);
            let adm_shared = shared.apply(collected.spec(*weight));
            assert_eq!(adm_cold.qid, adm_shared.qid);
            assert_eq!(adm_cold.evicted, adm_shared.evicted);
            assert_eq!(
                adm_cold.model_arms, adm_shared.model_arms,
                "admission {i}: spliced arms diverged"
            );
            assert_eq!(
                adm_cold.readvise.is_some(),
                adm_shared.readvise.is_some(),
                "admission {i}: trigger sequences diverged"
            );
            if let (Some(rc), Some(rs)) = (&adm_cold.readvise, &adm_shared.readvise) {
                assert_eq!(rc.trigger, rs.trigger);
                assert_eq!(rc.cost_before.to_bits(), rs.cost_before.to_bits());
                assert_eq!(rc.cost_after.to_bits(), rs.cost_after.to_bits());
                assert_eq!(rc.picks, rs.picks);
            }
        }
        assert_eq!(cold.selection(), shared.selection());
        assert_eq!(
            cold.current_cost().to_bits(),
            shared.current_cost().to_bits()
        );
        // The stream actually shared templates: far fewer collection calls
        // than relation instances, and the counters reconcile.
        let s = shared.stats();
        assert!(
            s.collect_calls < rels_total,
            "no template sharing: {} calls over {rels_total} relations",
            s.collect_calls
        );
        assert_eq!(s.collect_calls + s.collect_template_hits, rels_total);
        assert_eq!(shared.collector().optimizer_calls(), s.collect_calls);
        assert_eq!(shared.collector().group_count(), s.collect_calls);
        assert_eq!(cold.stats().collect_calls, 0, "cold path never collects");
        // Only the shared daemon has attribution books.
        assert!(shared.attribution().template_count() > 0);
        assert_eq!(cold.attribution().template_count(), 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let (_s, queries, pool, models) = fixture(2, 10);
        let run = || {
            let mut advisor = OnlineAdvisor::new(pool.clone(), opts(8, 4));
            for (i, (c, a)) in models.iter().enumerate() {
                advisor.apply(AdmissionSpec::new(c, a).weight(queries[i].1));
            }
            (
                advisor.current_cost(),
                advisor.selection().ids().collect::<Vec<_>>(),
                advisor.stats().readvises,
                advisor.stats().drift_readvises,
            )
        };
        let (c1, s1, r1, d1) = run();
        let (c2, s2, r2, d2) = run();
        assert_eq!(c1.to_bits(), c2.to_bits());
        assert_eq!(s1, s2);
        assert_eq!((r1, d1), (r2, d2));
    }

    #[test]
    fn scoping_without_templates_is_bit_identical_to_unscoped() {
        let (_s, queries, pool, models) = fixture(3, 10);
        let run = |scoped: bool| {
            let mut advisor = OnlineAdvisor::new(
                pool.clone(),
                OnlineAdvisorOptions {
                    scoped_readvise: scoped,
                    drift_threshold: 0.05,
                    ..opts(12, 8)
                },
            );
            for (i, (c, a)) in models.iter().enumerate() {
                advisor.apply(AdmissionSpec::new(c, a).weight(queries[i].1));
            }
            (
                advisor.current_cost(),
                advisor.selection().ids().collect::<Vec<_>>(),
                advisor.stats().readvises,
                advisor.stats().scoped_readvises,
            )
        };
        let (c_on, s_on, r_on, scoped_on) = run(true);
        let (c_off, s_off, r_off, scoped_off) = run(false);
        // No admission carried templates, so attribution must fall back
        // to the full scope — bit-identical runs, zero scoped rounds.
        assert_eq!(c_on.to_bits(), c_off.to_bits());
        assert_eq!(s_on, s_off);
        assert_eq!(r_on, r_off);
        assert_eq!(scoped_on, 0);
        assert_eq!(scoped_off, 0);
    }

    #[test]
    fn warm_and_cold_readvising_land_within_a_percent() {
        let (_s, _q, pool, models) = fixture(3, 10);
        let run = |warm: bool| {
            let mut advisor = OnlineAdvisor::new(
                pool.clone(),
                OnlineAdvisorOptions {
                    warm_start: warm,
                    ..opts(15, 6)
                },
            );
            for (c, a) in &models {
                advisor.apply(AdmissionSpec::new(c, a));
            }
            advisor.readvise();
            advisor.current_cost()
        };
        let (w, c) = (run(true), run(false));
        assert!(w.is_finite() && c.is_finite());
        assert!(
            w <= c * 1.01,
            "warm-started steady state {w} more than 1% above cold {c}"
        );
    }

    #[test]
    fn compact_mid_stream_changes_nothing_observable() {
        let (_s, _q, pool, models) = fixture(2, 10);
        let run = |compact_at: Option<usize>| {
            let mut advisor = OnlineAdvisor::new(pool.clone(), opts(7, 5));
            for (i, (c, a)) in models.iter().enumerate() {
                advisor.apply(AdmissionSpec::new(c, a));
                if compact_at == Some(i) {
                    advisor.compact();
                }
            }
            (
                advisor.current_cost(),
                advisor.selection().ids().collect::<Vec<_>>(),
                advisor.monitored_cost(),
            )
        };
        let (c_base, s_base, m_base) = run(None);
        let (c_cmp, s_cmp, m_cmp) = run(Some(12));
        // Compaction drops tombstone slots, which regroups the pairwise
        // sum tree: totals may drift by an ulp even though every live
        // per-query cost is unchanged. Decisions must match exactly.
        assert_eq!(s_base, s_cmp);
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(1.0);
        assert!(
            close(c_base, c_cmp),
            "current cost drifted: {c_base} vs {c_cmp}"
        );
        assert!(
            close(m_base, m_cmp),
            "monitored cost drifted: {m_base} vs {m_cmp}"
        );
    }

    #[test]
    fn long_streams_auto_compact_and_stay_window_sized() {
        let (_s, _q, pool, models) = fixture(3, 10);
        let window = 4;
        let mut advisor = OnlineAdvisor::new(pool, opts(window, 3));
        for (c, a) in &models {
            advisor.apply(AdmissionSpec::new(c, a));
            // Slot count must track the window, not lifetime admissions:
            // compaction fires at re-advise once tombstones outnumber
            // live queries, and an epoch is never more than 3 admits away.
            assert!(
                advisor.model().query_count() <= 2 * window + 3,
                "model grew to {} slots on a {}-query window",
                advisor.model().query_count(),
                window
            );
        }
        assert!(
            advisor.stats().compactions > 0,
            "a 30-admission stream over a 4-query window never compacted"
        );
        assert_eq!(advisor.stats().full_rebuilds, 0);
        assert_eq!(advisor.window_len(), window);
        // The admission-ordinal book retires its dead prefix at each
        // compaction, so its live span tracks the window, not lifetime
        // admissions — and retired ordinals degrade to counted misses.
        let (base, next) = advisor.admission_book_span();
        assert_eq!(next, advisor.stats().admits);
        assert!(
            next - base <= 2 * window + 3,
            "admission book grew to {} entries on a {}-query window",
            next - base,
            window
        );
        assert!(base > 0, "compaction never retired a dead prefix");
        assert!(!advisor.reweight(0, 9.9, false).applied);
        assert_eq!(advisor.stats().reweight_misses, 1);
    }

    #[test]
    fn decay_fades_resident_weights() {
        let (_s, _q, pool, models) = fixture(2, 10);
        let mut advisor = OnlineAdvisor::new(
            pool,
            OnlineAdvisorOptions {
                decay: 0.5,
                ..opts(20, 5)
            },
        );
        for (c, a) in &models[..10] {
            advisor.apply(AdmissionSpec::new(c, a));
        }
        // Two epochs passed (admissions 5 and 10): the first resident
        // decayed twice, the most recent admission only once (it was in
        // the window when its own epoch boundary fired).
        let model = advisor.model();
        assert!(model.weight(0) <= 0.25 + 1e-12);
        assert!(model.weight(9) <= 0.5 + 1e-12);
        assert!(model.weight(0) < model.weight(9));
    }

    #[test]
    fn drift_detector_fires_on_a_template_shift() {
        // Build two deliberately different phases with a long epoch so
        // only the drift detector can trigger between boundaries.
        let (_s, _q, pool, models) = fixture(3, 12);
        let mut advisor = OnlineAdvisor::new(
            pool,
            OnlineAdvisorOptions {
                drift_threshold: 0.05,
                ..opts(36, 1_000_000)
            },
        );
        // Warm up on phase 0 and pin a baseline.
        for (c, a) in &models[..12] {
            advisor.apply(AdmissionSpec::new(c, a));
        }
        advisor.readvise();
        // Stream the later phases; the mix shift should regress the old
        // selection enough to fire Drift before any epoch boundary.
        let mut drifted = false;
        for (c, a) in &models[12..] {
            if let Some(r) = advisor.apply(AdmissionSpec::new(c, a)).readvise {
                assert_eq!(r.trigger, ReadviseTrigger::Drift);
                drifted = true;
                break;
            }
        }
        assert!(drifted, "template shift never fired the drift detector");
    }

    #[test]
    fn reweights_reprice_one_query_and_can_fire_drift() {
        let (_s, _q, pool, models) = fixture(2, 12);
        let mut advisor = OnlineAdvisor::new(
            pool,
            OnlineAdvisorOptions {
                drift_threshold: 0.05,
                ..opts(24, 1_000_000)
            },
        );
        for (c, a) in &models[..12] {
            advisor.apply(AdmissionSpec::new(c, a));
        }
        advisor.readvise();
        let before = advisor.current_cost();
        assert!(before.is_finite());
        // Heat one resident in place until the monitor trips.
        let mut fired = None;
        let mut weight = 1.0;
        for _ in 0..24 {
            weight *= 2.0;
            if let Some(r) = advisor.reweight(3, weight, false).readvise {
                fired = Some(r);
                break;
            }
        }
        let report = fired.expect("a hot query must eventually fire drift");
        assert_eq!(report.trigger, ReadviseTrigger::Drift);
        assert!(advisor.stats().reweights > 0);
        assert_eq!(advisor.stats().reweight_misses, 0);
        assert_eq!(
            advisor.model().weight(3),
            weight,
            "reweight landed on the wrong query"
        );
        // Epoch clock untouched by reweights: no epoch re-advise fired.
        assert_eq!(advisor.stats().epoch_readvises, 0);
    }

    #[test]
    fn reweighting_an_evicted_admission_is_a_counted_noop() {
        let (_s, _q, pool, models) = fixture(2, 10);
        let mut advisor = OnlineAdvisor::new(pool, opts(4, 6));
        for (c, a) in &models[..10] {
            advisor.apply(AdmissionSpec::new(c, a));
        }
        // Admission 0 slid out of the 4-query window long ago.
        let before = advisor.current_cost();
        assert!(!advisor.reweight(0, 100.0, false).applied);
        assert_eq!(advisor.stats().reweight_misses, 1);
        assert_eq!(advisor.stats().reweights, 0);
        assert_eq!(advisor.current_cost().to_bits(), before.to_bits());
    }

    #[test]
    fn reweight_ordinals_survive_compaction() {
        let (_s, _q, pool, models) = fixture(3, 10);
        let mut advisor = OnlineAdvisor::new(pool, opts(5, 4));
        let mut last_ordinal = 0;
        for (c, a) in &models {
            last_ordinal = advisor.apply(AdmissionSpec::new(c, a)).ordinal;
        }
        assert!(
            advisor.stats().compactions > 0,
            "stream must have compacted"
        );
        // The newest admission is certainly still resident; its ordinal
        // handle must still resolve after however many compactions.
        assert!(advisor.reweight(last_ordinal, 3.5, false).applied);
        assert_eq!(advisor.stats().reweight_misses, 0);
        let qid = *advisor
            .window_ids()
            .last()
            .expect("window holds the newest admission");
        assert_eq!(advisor.model().weight(qid), 3.5);
    }

    #[test]
    fn deferred_readvising_is_bit_identical_to_inline() {
        let (_s, queries, pool, models) = fixture(3, 10);
        // Inline daemon: re-advises execute inside admit/reweight.
        let mut inline = OnlineAdvisor::new(pool.clone(), opts(12, 5));
        // Deferred daemon: triggers are returned and executed one step
        // later (the server's budget gate, minus the budget).
        let mut deferred = OnlineAdvisor::new(pool.clone(), opts(12, 5));
        for (i, (c, a)) in models.iter().enumerate() {
            let templates = query_templates(&queries[i].0);
            let adm_inline = inline.apply(
                AdmissionSpec::new(c, a)
                    .weight(queries[i].1)
                    .templates(&templates),
            );
            let adm_def = deferred.apply(
                AdmissionSpec::new(c, a)
                    .weight(queries[i].1)
                    .templates(&templates)
                    .deferred(true),
            );
            let trigger = adm_def.pending;
            assert_eq!(adm_inline.qid, adm_def.qid);
            assert_eq!(adm_inline.ordinal, adm_def.ordinal);
            assert_eq!(adm_inline.evicted, adm_def.evicted);
            assert_eq!(
                adm_inline.readvise.as_ref().map(|r| r.trigger),
                trigger,
                "admission {i}: trigger sequences diverged"
            );
            if let Some(t) = trigger {
                let r_def = deferred.readvise_triggered(t);
                let r_inl = adm_inline.readvise.expect("inline fired");
                assert_eq!(r_inl.cost_before.to_bits(), r_def.cost_before.to_bits());
                assert_eq!(r_inl.cost_after.to_bits(), r_def.cost_after.to_bits());
                assert_eq!(r_inl.picks, r_def.picks);
                assert_eq!(r_inl.scoped, r_def.scoped);
            }
            // Interleave some deferred reweights to cover that path too.
            if i % 4 == 3 {
                let w = queries[i].1 * 1.5;
                let inl = inline.reweight(adm_inline.ordinal, w, false).readvise;
                let out = deferred.reweight(adm_def.ordinal, w, true);
                let t = out.pending;
                assert!(out.applied);
                assert_eq!(inl.as_ref().map(|r| r.trigger), t);
                if let Some(t) = t {
                    let r_def = deferred.readvise_triggered(t);
                    let r_inl = inl.expect("inline fired");
                    assert_eq!(r_inl.cost_after.to_bits(), r_def.cost_after.to_bits());
                }
            }
        }
        assert_eq!(inline.selection(), deferred.selection());
        assert_eq!(
            inline.current_cost().to_bits(),
            deferred.current_cost().to_bits()
        );
        assert_eq!(inline.stats().readvises, deferred.stats().readvises);
        assert_eq!(
            inline.stats().drift_readvises,
            deferred.stats().drift_readvises
        );
        assert_eq!(
            inline.stats().scoped_readvises,
            deferred.stats().scoped_readvises
        );
    }

    #[test]
    fn explicit_eviction_retracts_a_resident() {
        let (_s, _q, pool, models) = fixture(2, 10);
        let mut advisor = OnlineAdvisor::new(pool, opts(16, 1_000_000));
        let mut ordinals = Vec::new();
        for (c, a) in &models[..8] {
            ordinals.push(advisor.apply(AdmissionSpec::new(c, a)).ordinal);
        }
        assert_eq!(advisor.window_len(), 8);
        let before = advisor.current_cost();
        assert!(advisor.evict_admission(ordinals[2]));
        assert_eq!(advisor.window_len(), 7);
        assert_eq!(advisor.model().live_query_count(), 7);
        assert_eq!(advisor.stats().evictions, 1);
        assert!(
            advisor.current_cost() <= before,
            "evicting a resident cannot raise the priced total"
        );
        // Evicting it again (or reweighting it) is a clean no-op.
        assert!(!advisor.evict_admission(ordinals[2]));
        assert!(!advisor.reweight(ordinals[2], 5.0, false).applied);
        assert_eq!(advisor.stats().reweight_misses, 1);
        // The remaining residents still resolve.
        assert!(advisor.evict_admission(ordinals[7]));
        assert_eq!(advisor.window_len(), 6);
    }

    /// The deprecated pre-spec entry points are one-line shims over
    /// [`OnlineAdvisor::apply`]/[`OnlineAdvisor::reweight`]; their observable
    /// behaviour must stay bit-identical to the spec path they forward to.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_are_bit_identical_to_specs() {
        let (_s, queries, pool, models) = fixture(3, 10);
        let mut legacy = OnlineAdvisor::new(pool.clone(), opts(12, 5));
        let mut spec = OnlineAdvisor::new(pool.clone(), opts(12, 5));
        for (i, (c, a)) in models.iter().enumerate() {
            let templates = query_templates(&queries[i].0);
            let w = queries[i].1;
            let (adm_old, adm_new) = match i % 4 {
                0 => (legacy.admit(c, a), spec.apply(AdmissionSpec::new(c, a))),
                1 => (
                    legacy.admit_weighted(c, a, w),
                    spec.apply(AdmissionSpec::new(c, a).weight(w)),
                ),
                2 => (
                    legacy.admit_attributed(c, a, w, &templates),
                    spec.apply(AdmissionSpec::new(c, a).weight(w).templates(&templates)),
                ),
                _ => {
                    let (adm, trig) = legacy.admit_attributed_deferred(c, a, w, &templates);
                    let adm_new = spec.apply(
                        AdmissionSpec::new(c, a)
                            .weight(w)
                            .templates(&templates)
                            .deferred(true),
                    );
                    assert_eq!(trig, adm_new.pending, "admission {i}: pending diverged");
                    if let Some(t) = trig {
                        legacy.readvise_triggered(t);
                        spec.readvise_triggered(t);
                    }
                    (adm, adm_new)
                }
            };
            assert_eq!(adm_old.qid, adm_new.qid);
            assert_eq!(adm_old.ordinal, adm_new.ordinal);
            assert_eq!(adm_old.evicted, adm_new.evicted);
            assert_eq!(
                adm_old.readvise.as_ref().map(|r| r.trigger),
                adm_new.readvise.as_ref().map(|r| r.trigger)
            );
            if i % 5 == 4 {
                let r_old = legacy.reweight_admission(adm_old.ordinal, w * 2.0);
                let out = spec.reweight(adm_new.ordinal, w * 2.0, false);
                assert!(out.applied);
                assert_eq!(
                    r_old.as_ref().map(|r| r.cost_after.to_bits()),
                    out.readvise.as_ref().map(|r| r.cost_after.to_bits())
                );
            }
        }
        assert_eq!(legacy.selection(), spec.selection());
        assert_eq!(
            legacy.current_cost().to_bits(),
            spec.current_cost().to_bits()
        );
        assert_eq!(legacy.stats().readvises, spec.stats().readvises);
        assert_eq!(legacy.stats().reweights, spec.stats().reweights);
    }

    /// A parts round-trip mid-stream is invisible: the restored daemon
    /// finishes the stream bit-identically to one that never stopped —
    /// selection, priced bits, counters, ordinal handles — and the
    /// restore itself performs zero full re-pricings.
    #[test]
    fn parts_roundtrip_resumes_bit_identically() {
        let (_s, queries, pool, models) = fixture(3, 10);
        let o = OnlineAdvisorOptions {
            drift_threshold: 0.05,
            ..opts(12, 5)
        };
        let drive = |advisor: &mut OnlineAdvisor, range: std::ops::Range<usize>| {
            for i in range {
                let templates = query_templates(&queries[i].0);
                advisor.apply(
                    AdmissionSpec::new(&models[i].0, &models[i].1)
                        .weight(queries[i].1)
                        .templates(&templates),
                );
                if i % 7 == 6 {
                    advisor.reweight(i, queries[i].1 * 2.0, false);
                }
            }
        };
        let mut baseline = OnlineAdvisor::new(pool.clone(), o);
        drive(&mut baseline, 0..models.len());

        let mut first = OnlineAdvisor::new(pool.clone(), o);
        drive(&mut first, 0..17);
        let parts = first.to_parts();
        let fulls_at_export = parts.full_repricings;
        let mut restored =
            OnlineAdvisor::from_parts(pool.clone(), o, parts).expect("exported parts are valid");
        assert_eq!(restored.session().full_repricings(), fulls_at_export);
        assert_eq!(
            restored.current_cost().to_bits(),
            first.current_cost().to_bits()
        );
        drive(&mut restored, 17..models.len());

        assert_eq!(baseline.selection(), restored.selection());
        assert_eq!(
            baseline.current_cost().to_bits(),
            restored.current_cost().to_bits()
        );
        assert_eq!(
            baseline.session().state().per_query(),
            restored.session().state().per_query()
        );
        let (b, r) = (baseline.stats(), restored.stats());
        assert_eq!(b.admits, r.admits);
        assert_eq!(b.evictions, r.evictions);
        assert_eq!(b.reweights, r.reweights);
        assert_eq!(b.readvises, r.readvises);
        assert_eq!(b.drift_readvises, r.drift_readvises);
        assert_eq!(b.scoped_readvises, r.scoped_readvises);
        assert_eq!(b.compactions, r.compactions);
        assert_eq!(b.full_rebuilds, r.full_rebuilds);
        assert_eq!(b.full_repricings, r.full_repricings);
        assert_eq!(
            baseline.admission_book_span(),
            restored.admission_book_span()
        );
        assert_eq!(baseline.window_ids(), restored.window_ids());
        assert_eq!(
            baseline.attribution().template_count(),
            restored.attribution().template_count()
        );
    }

    /// Corrupted parts are rejected with typed errors, never panics.
    #[test]
    fn hostile_advisor_parts_are_rejected() {
        let (_s, queries, pool, models) = fixture(2, 8);
        let o = opts(10, 4);
        let mut advisor = OnlineAdvisor::new(pool.clone(), o);
        for (i, (c, a)) in models.iter().enumerate() {
            let templates = query_templates(&queries[i].0);
            advisor.apply(
                AdmissionSpec::new(c, a)
                    .weight(queries[i].1)
                    .templates(&templates),
            );
        }
        let good = advisor.to_parts();
        assert!(OnlineAdvisor::from_parts(pool.clone(), o, good.clone()).is_ok());

        let mut p = good.clone();
        p.window.pop();
        assert!(OnlineAdvisor::from_parts(pool.clone(), o, p).is_err());

        let mut p = good.clone();
        p.stats.admits += 1;
        assert!(OnlineAdvisor::from_parts(pool.clone(), o, p).is_err());

        let mut p = good.clone();
        if let Some(w) = p.window.first_mut() {
            *w = u32::MAX - 1;
        }
        assert!(OnlineAdvisor::from_parts(pool.clone(), o, p).is_err());

        let mut p = good.clone();
        p.baseline_mean = f64::NAN;
        assert!(OnlineAdvisor::from_parts(pool.clone(), o, p).is_err());

        let mut p = good.clone();
        p.per_query.pop();
        assert!(OnlineAdvisor::from_parts(pool.clone(), o, p).is_err());

        let mut p = good.clone();
        p.selection_words.push(u64::MAX);
        assert!(OnlineAdvisor::from_parts(pool.clone(), o, p).is_err());

        let mut p = good.clone();
        p.attribution.status.fill(9);
        assert!(OnlineAdvisor::from_parts(pool, o, p).is_err());
    }

    #[test]
    fn attributed_stream_scopes_drift_readvises() {
        let (_s, queries, pool, models) = fixture(3, 12);
        let run = |scoped: bool| {
            let mut advisor = OnlineAdvisor::new(
                pool.clone(),
                OnlineAdvisorOptions {
                    drift_threshold: 0.05,
                    scoped_readvise: scoped,
                    ..opts(18, 1_000_000)
                },
            );
            // Warm up on phase 0 and pin a baseline so the later phases'
            // template shift can fire the drift detector.
            for (i, (c, a)) in models.iter().enumerate() {
                let templates = query_templates(&queries[i].0);
                advisor.apply(
                    AdmissionSpec::new(c, a)
                        .weight(queries[i].1)
                        .templates(&templates),
                );
                if i == 11 {
                    advisor.readvise();
                }
            }
            advisor.readvise();
            (advisor.current_cost(), advisor.stats().clone())
        };
        let (scoped_cost, scoped_stats) = run(true);
        let (full_cost, full_stats) = run(false);
        assert!(scoped_cost.is_finite() && full_cost.is_finite());
        assert_eq!(full_stats.scoped_readvises, 0);
        // Drift fired on this stream (the template shift), and with
        // attribution the drift rounds ran scoped.
        assert!(scoped_stats.drift_readvises > 0, "no drift on this stream");
        assert!(
            scoped_stats.scoped_readvises > 0,
            "attributed drift never scoped a re-advise"
        );
        // Scoping costs at most a whisker of quality on this fixture.
        assert!(
            scoped_cost <= full_cost * 1.05,
            "scoped quality fell off: {scoped_cost} vs {full_cost}"
        );
    }
}
