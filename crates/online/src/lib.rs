//! # pinum-online — the workload as a stream
//!
//! The paper makes what-if pricing cheap enough to run *continuously*;
//! this crate is the serving layer that actually does so. Instead of
//! building a [`WorkloadModel`] once per batch and re-selecting from
//! scratch whenever the workload moves, [`OnlineAdvisor`] runs as a
//! long-lived daemon over the streaming model:
//!
//! * **admission** — every arriving query's `(plan cache, access
//!   catalog)` pair (the one-optimizer-call artifacts) is spliced into
//!   the live model with [`WorkloadModel::admit_query`] in O(that
//!   query's access arms); the advisor never rebuilds the model
//!   ([`OnlineStats::full_rebuilds`] stays 0 by construction, and the
//!   `exp_online_drift` acceptance gate checks exactly that);
//! * **sliding window** — the model holds the most recent
//!   `window_capacity` queries (count eviction), optionally *weight
//!   decayed*: each advising round multiplies every resident query's
//!   weight by `decay`, so older residents fade before they fall out;
//! * **drift detection** — the advisor tracks the mean priced cost of
//!   the *current* selection over the live window (maintained
//!   incrementally, O(new query) per admission) against the mean
//!   captured right after the last re-advise; when it regresses beyond
//!   `drift_threshold`, re-selection fires early;
//! * **epoch-based re-advising** — otherwise re-selection runs every
//!   `epoch_length` admissions, **warm-started** from the previous
//!   selection through
//!   [`pinum_advisor::search::SearchStrategy::search_warm`] instead of
//!   searching from empty, so steady-state re-advises converge in a few
//!   probes instead of re-deriving the whole selection.
//!
//! The daemon is deterministic: the same pool, option set, and admission
//! sequence produce bit-identical selections, costs, and trigger
//! sequences — which is how the drift experiment can hold it against a
//! periodic full-rebuild baseline on the same history.

use pinum_advisor::greedy::GreedyOptions;
use pinum_advisor::search::StrategyKind;
use pinum_core::access_costs::AccessCostCatalog;
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::cache::PlanCache;
use pinum_core::{CandidatePool, Selection, WorkloadCollector, WorkloadModel};
use pinum_optimizer::Optimizer;
use pinum_query::Query;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Knobs of the online tuning daemon.
#[derive(Debug, Clone, Copy)]
pub struct OnlineAdvisorOptions {
    /// Maximum live queries in the sliding window (count eviction).
    pub window_capacity: usize,
    /// Admissions per epoch; every epoch boundary re-advises.
    pub epoch_length: usize,
    /// Relative regression of the window's mean priced cost (vs the mean
    /// right after the last re-advise) that fires an early re-advise.
    pub drift_threshold: f64,
    /// Per-advising-round weight decay applied to every resident query
    /// (1.0 = pure count window, no decay).
    pub decay: f64,
    /// Search strategy used at re-advise time.
    pub strategy: StrategyKind,
    /// Index disk budget handed to the strategy.
    pub budget_bytes: u64,
    /// Rank candidates by benefit per byte inside the strategy.
    pub benefit_per_byte: bool,
    /// Warm-start re-advises from the previous selection (the whole
    /// point; `false` keeps a cold-search mode for ablations).
    pub warm_start: bool,
}

impl OnlineAdvisorOptions {
    /// Sensible daemon defaults for a given budget: 256-query window,
    /// epoch of 64, 20 % drift threshold, warm-started lazy greedy.
    pub fn defaults(budget_bytes: u64) -> Self {
        Self {
            window_capacity: 256,
            epoch_length: 64,
            drift_threshold: 0.2,
            decay: 1.0,
            strategy: StrategyKind::LazyGreedy,
            budget_bytes,
            benefit_per_byte: false,
            warm_start: true,
        }
    }
}

/// What caused a re-advise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadviseTrigger {
    /// Epoch boundary (`epoch_length` admissions since the last one).
    Epoch,
    /// Drift detector fired early.
    Drift,
    /// Caller asked explicitly via [`OnlineAdvisor::readvise`].
    Forced,
}

/// Outcome of one re-advising round.
#[derive(Debug, Clone)]
pub struct ReadviseReport {
    pub trigger: ReadviseTrigger,
    pub wall: Duration,
    /// Exact priced cost of the *old* selection over the current window.
    pub cost_before: f64,
    /// Exact priced cost of the new selection over the current window.
    pub cost_after: f64,
    /// Indexes in the new selection.
    pub picks: usize,
    /// Workload-cost evaluations the search spent.
    pub evaluations: usize,
    /// Individual query re-pricings the search spent.
    pub queries_repriced: usize,
}

/// Outcome of one admission.
#[derive(Debug, Clone)]
pub struct Admission {
    /// Stable query id inside the streaming model.
    pub qid: usize,
    /// Query evicted by the window, if it overflowed.
    pub evicted: Option<usize>,
    /// Wall time of the model splice alone ([`WorkloadModel::admit_query`]).
    pub model_wall: Duration,
    /// Flattened access arms of the admitted query — the unit the splice
    /// work is proportional to (never the workload size).
    pub model_arms: usize,
    /// The re-advise this admission triggered, if any.
    pub readvise: Option<ReadviseReport>,
}

/// Counters proving what the daemon did (and did not) do.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    pub admits: usize,
    pub evictions: usize,
    pub readvises: usize,
    pub epoch_readvises: usize,
    pub drift_readvises: usize,
    pub forced_readvises: usize,
    /// From-scratch [`WorkloadModel`] builds performed after start-up.
    /// Never incremented by this implementation — the counter exists so
    /// the acceptance experiment can *assert* the online path stayed
    /// incremental.
    pub full_rebuilds: usize,
    /// Tombstone compactions (O(window) renumbering, not rebuilds —
    /// pricing is bit-identical across them).
    pub compactions: usize,
    /// Total / max flattened arms over all admissions (the O(query) work
    /// witness: these are stream properties, independent of window size).
    pub admit_arms_total: usize,
    pub admit_arms_max: usize,
    /// Optimizer calls spent on access collection by
    /// [`OnlineAdvisor::admit_collected`] — one per *new* template shape,
    /// zero for admissions whose relations all hit the shared cache.
    pub collect_calls: usize,
    /// Relation collections `admit_collected` served straight from the
    /// shared template cache.
    pub collect_template_hits: usize,
    /// Summed wall time of the model splices alone.
    pub model_admit_wall: Duration,
    /// Summed wall time of re-advising rounds.
    pub readvise_wall: Duration,
}

/// The epoch-based online tuning daemon. See the crate docs.
pub struct OnlineAdvisor {
    pool: CandidatePool,
    opts: OnlineAdvisorOptions,
    model: WorkloadModel,
    /// Shared template cache for [`Self::admit_collected`]: admissions of
    /// template-sharing queries skip access-collection optimizer calls.
    collector: WorkloadCollector,
    /// Live query ids, admission order (front = oldest).
    window: VecDeque<usize>,
    selection: Selection,
    /// Monitoring state: per-slot weighted contribution of the current
    /// selection (0.0 for tombstones) and its running sum. Maintained
    /// incrementally for drift detection; reset from an exact
    /// `price_full` at every re-advise.
    monitor_per_query: Vec<f64>,
    monitor_total: f64,
    /// Mean priced cost per live query right after the last re-advise
    /// (infinite before the first one, which disarms the drift detector
    /// until an epoch fires).
    baseline_mean: f64,
    admits_since_advise: usize,
    stats: OnlineStats,
}

impl OnlineAdvisor {
    /// Starts the daemon over a fixed candidate pool with an empty
    /// window and an empty selection.
    pub fn new(pool: CandidatePool, opts: OnlineAdvisorOptions) -> Self {
        assert!(opts.window_capacity >= 1, "window must hold a query");
        assert!(opts.epoch_length >= 1, "epoch must span an admission");
        assert!(
            opts.drift_threshold >= 0.0 && opts.drift_threshold.is_finite(),
            "drift threshold must be a finite non-negative ratio"
        );
        assert!(
            opts.decay > 0.0 && opts.decay <= 1.0,
            "decay must be in (0, 1]"
        );
        let model = WorkloadModel::build(pool.len(), std::iter::empty());
        let selection = Selection::empty(pool.len());
        Self {
            pool,
            opts,
            model,
            collector: WorkloadCollector::new(),
            window: VecDeque::new(),
            selection,
            monitor_per_query: Vec::new(),
            monitor_total: 0.0,
            baseline_mean: f64::INFINITY,
            admits_since_advise: 0,
            stats: OnlineStats::default(),
        }
    }

    /// Admits one arriving query (weight 1.0). The `(cache, access)`
    /// pair is the per-query artifact of the paper's one optimizer call —
    /// built by the caller, spliced here.
    pub fn admit(&mut self, cache: &PlanCache, access: &AccessCostCatalog) -> Admission {
        self.admit_weighted(cache, access, 1.0)
    }

    /// Admits an arriving query *from scratch*: builds its PINUM plan
    /// cache (two optimizer calls) and collects its access costs through
    /// the daemon's shared template cache, then splices the pair in.
    ///
    /// The collection side is where streaming admission meets batched
    /// collection: an admission whose relations all match templates seen
    /// earlier in the stream pays **zero** collection calls
    /// ([`OnlineStats::collect_calls`] counts the exceptions), and the
    /// spliced model is bit-identical to one built from a dedicated
    /// per-query `collect_pinum` call — the collector debug-asserts that
    /// on every admission.
    pub fn admit_collected(
        &mut self,
        optimizer: &Optimizer<'_>,
        query: &Query,
        builder: &BuilderOptions,
        weight: f64,
    ) -> Admission {
        let built = build_cache_pinum(optimizer, query, builder);
        let (access, cstats) = self.collector.collect(optimizer, query, &self.pool);
        self.stats.collect_calls += cstats.optimizer_calls;
        self.stats.collect_template_hits += query.relation_count() - cstats.optimizer_calls;
        self.admit_weighted(&built.cache, &access, weight)
    }

    /// [`Self::admit`] with an explicit workload weight (e.g. from the
    /// drift generator's table-growth events).
    pub fn admit_weighted(
        &mut self,
        cache: &PlanCache,
        access: &AccessCostCatalog,
        weight: f64,
    ) -> Admission {
        // --- Model splice: O(this query's arms), never O(window). ---
        let splice = Instant::now();
        let qid = self.model.admit_query_weighted(cache, access, weight);
        let model_wall = splice.elapsed();
        let model_arms = self.model.query_arm_count(qid);
        self.stats.admits += 1;
        self.stats.model_admit_wall += model_wall;
        self.stats.admit_arms_total += model_arms;
        self.stats.admit_arms_max = self.stats.admit_arms_max.max(model_arms);
        self.window.push_back(qid);

        // --- Monitor: price the newcomer under the current selection. ---
        let contribution = weight * self.model.price_query(qid, &self.selection, None);
        debug_assert_eq!(self.monitor_per_query.len(), qid);
        self.monitor_per_query.push(contribution);
        self.monitor_total += contribution;

        // --- Window overflow: retract the oldest resident. ---
        let evicted = if self.window.len() > self.opts.window_capacity {
            let oldest = self.window.pop_front().expect("window non-empty");
            self.monitor_total -= self.monitor_per_query[oldest];
            self.monitor_per_query[oldest] = 0.0;
            self.model.evict_query(oldest);
            self.stats.evictions += 1;
            Some(oldest)
        } else {
            None
        };

        self.admits_since_advise += 1;
        let readvise = self.maybe_readvise();
        Admission {
            qid,
            evicted,
            model_wall,
            model_arms,
            readvise,
        }
    }

    /// Whether the window's mean priced cost has regressed past the
    /// threshold (written so a NaN monitor — inf−inf arithmetic after an
    /// unpriceable admission — also fires and self-heals on the exact
    /// re-pricing the re-advise performs).
    fn drift_fired(&self) -> bool {
        if self.window.is_empty() || !self.baseline_mean.is_finite() {
            return false;
        }
        let mean_now = self.monitor_total / self.window.len() as f64;
        let bound = self.baseline_mean * (1.0 + self.opts.drift_threshold);
        // Fires on Greater *and* on NaN (incomparable) — a NaN monitor
        // must trigger the exact re-pricing that heals it.
        !matches!(
            mean_now.partial_cmp(&bound),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )
    }

    fn maybe_readvise(&mut self) -> Option<ReadviseReport> {
        let trigger = if self.admits_since_advise >= self.opts.epoch_length {
            ReadviseTrigger::Epoch
        } else if self.drift_fired() {
            ReadviseTrigger::Drift
        } else {
            return None;
        };
        Some(self.readvise_with(trigger))
    }

    /// Forces a re-advising round right now (callers use this to flush a
    /// warm-up batch; the daemon itself re-advises on epochs and drift).
    pub fn readvise(&mut self) -> ReadviseReport {
        self.readvise_with(ReadviseTrigger::Forced)
    }

    fn readvise_with(&mut self, trigger: ReadviseTrigger) -> ReadviseReport {
        let start = Instant::now();
        // Tombstone hygiene: once dead slots outnumber live ones, compact
        // so re-advise pricing (and the monitor vector) stays O(window)
        // over the daemon's whole lifetime instead of O(admissions ever).
        // Totals are bit-identical across compaction (tombstones price to
        // exactly 0.0), so this changes nothing observable but memory.
        if self.model.query_count() - self.model.live_query_count() > self.model.live_query_count()
        {
            self.compact();
        }
        // Weight decay: every resident fades one round before re-selection
        // sees the window (no-op at decay = 1.0).
        if self.opts.decay < 1.0 {
            for &qid in &self.window {
                let faded = (self.model.weight(qid) * self.opts.decay).max(f64::MIN_POSITIVE);
                self.model.reweight_query(qid, faded);
            }
        }
        let cost_before = self.model.price_full(&self.selection).total;
        let gopts = GreedyOptions {
            budget_bytes: self.opts.budget_bytes,
            benefit_per_byte: self.opts.benefit_per_byte,
        };
        let strategy = self.opts.strategy.build();
        let result = if self.opts.warm_start {
            strategy.search_warm(&self.pool, &self.model, &gopts, &self.selection)
        } else {
            strategy.search(&self.pool, &self.model, &gopts)
        };
        self.selection = result.selection;

        // Reset the monitor from an exact pricing of the new selection —
        // incremental drift from the running sums ends here.
        let state = self.model.price_full(&self.selection);
        self.baseline_mean = if self.window.is_empty() {
            f64::INFINITY
        } else {
            state.total / self.window.len() as f64
        };
        let cost_after = state.total;
        self.monitor_total = state.total;
        self.monitor_per_query = state.per_query;
        self.admits_since_advise = 0;

        let wall = start.elapsed();
        self.stats.readvises += 1;
        self.stats.readvise_wall += wall;
        match trigger {
            ReadviseTrigger::Epoch => self.stats.epoch_readvises += 1,
            ReadviseTrigger::Drift => self.stats.drift_readvises += 1,
            ReadviseTrigger::Forced => self.stats.forced_readvises += 1,
        }
        ReadviseReport {
            trigger,
            wall,
            cost_before,
            cost_after,
            picks: result.picked.len(),
            evaluations: result.evaluations,
            queries_repriced: result.queries_repriced,
        }
    }

    /// Drops eviction tombstones from the underlying model; window ids
    /// and the monitoring state are remapped, so behaviour is unchanged.
    /// Runs automatically at re-advise time whenever tombstones outnumber
    /// live queries (which renumbers query ids — treat an [`Admission`]'s
    /// `qid` as valid only until the next re-advise), and stays public
    /// for callers who want memory back sooner.
    pub fn compact(&mut self) {
        self.stats.compactions += 1;
        let remap = self.model.compact();
        let mut monitor = vec![0.0; self.model.query_count()];
        for (old, &new) in remap.iter().enumerate() {
            if new != u32::MAX {
                monitor[new as usize] = self.monitor_per_query[old];
            }
        }
        self.monitor_per_query = monitor;
        for qid in self.window.iter_mut() {
            let new = remap[*qid];
            debug_assert_ne!(new, u32::MAX, "window held an evicted query");
            *qid = new as usize;
        }
    }

    /// Exact priced cost of the current selection over the live window.
    pub fn current_cost(&self) -> f64 {
        self.model.price_full(&self.selection).total
    }

    /// The monitor's running (incrementally maintained) total — what the
    /// drift detector sees between re-advises.
    pub fn monitored_cost(&self) -> f64 {
        self.monitor_total
    }

    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    pub fn model(&self) -> &WorkloadModel {
        &self.model
    }

    pub fn pool(&self) -> &CandidatePool {
        &self.pool
    }

    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// The shared template cache behind [`Self::admit_collected`].
    pub fn collector(&self) -> &WorkloadCollector {
        &self.collector
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_advisor::candidates::generate_candidates;
    use pinum_core::access_costs::collect_pinum;
    use pinum_core::builder::{build_cache_pinum, BuilderOptions};
    use pinum_optimizer::Optimizer;
    use pinum_query::Query;
    use pinum_workload::drift::{DriftProfile, DriftStream};
    use pinum_workload::star::StarSchema;

    const BUDGET: u64 = 1 << 30;

    /// Small drifting stream plus the pool/caches both tests and the
    /// bench experiment style of consumption need.
    #[allow(clippy::type_complexity)]
    fn fixture(
        phases: usize,
        phase_length: usize,
    ) -> (
        StarSchema,
        Vec<(Query, f64)>,
        CandidatePool,
        Vec<(PlanCache, AccessCostCatalog)>,
    ) {
        let schema = StarSchema::generate(42, 0.001);
        let profile = DriftProfile {
            phases,
            phase_length,
            edge_window: 3,
            churn: 0.05,
            growth_per_phase: 1.0,
        };
        let stream: Vec<_> = DriftStream::new(&schema, 9, profile).collect();
        let queries: Vec<(Query, f64)> = stream.into_iter().map(|d| (d.query, d.weight)).collect();
        let only: Vec<Query> = queries.iter().map(|(q, _)| q.clone()).collect();
        let pool = generate_candidates(&schema.catalog, &only);
        let optimizer = Optimizer::new(&schema.catalog);
        let models = only
            .iter()
            .map(|q| {
                let built = build_cache_pinum(&optimizer, q, &BuilderOptions::default());
                let (access, _) = collect_pinum(&optimizer, q, &pool);
                (built.cache, access)
            })
            .collect();
        (schema, queries, pool, models)
    }

    fn opts(window: usize, epoch: usize) -> OnlineAdvisorOptions {
        OnlineAdvisorOptions {
            window_capacity: window,
            epoch_length: epoch,
            ..OnlineAdvisorOptions::defaults(BUDGET)
        }
    }

    #[test]
    fn window_capacity_is_enforced() {
        let (_s, queries, pool, models) = fixture(2, 10);
        let mut advisor = OnlineAdvisor::new(pool, opts(8, 5));
        for (i, (c, a)) in models.iter().enumerate() {
            let adm = advisor.admit_weighted(c, a, queries[i].1);
            assert_eq!(adm.evicted.is_some(), i >= 8);
            assert!(advisor.window_len() <= 8);
        }
        assert_eq!(advisor.window_len(), 8);
        assert_eq!(advisor.model().live_query_count(), 8);
        assert_eq!(advisor.stats().admits, 20);
        assert_eq!(advisor.stats().evictions, 12);
    }

    #[test]
    fn epochs_readvise_on_schedule() {
        let (_s, _q, pool, models) = fixture(2, 10);
        // Disarm the drift detector so the epoch schedule is exact.
        let mut advisor = OnlineAdvisor::new(
            pool,
            OnlineAdvisorOptions {
                drift_threshold: 1e18,
                ..opts(16, 5)
            },
        );
        let mut at = Vec::new();
        for (i, (c, a)) in models.iter().enumerate() {
            if let Some(r) = advisor.admit(c, a).readvise {
                assert_eq!(r.trigger, ReadviseTrigger::Epoch);
                at.push(i);
            }
        }
        assert_eq!(at, vec![4, 9, 14, 19], "epoch boundaries off schedule");
        assert_eq!(advisor.stats().epoch_readvises, 4);
        assert_eq!(advisor.stats().readvises, 4);
    }

    #[test]
    fn readvise_never_leaves_a_worse_selection() {
        let (_s, _q, pool, models) = fixture(3, 8);
        let mut advisor = OnlineAdvisor::new(pool, opts(12, 6));
        for (c, a) in &models {
            if let Some(r) = advisor.admit(c, a).readvise {
                assert!(
                    r.cost_after <= r.cost_before * (1.0 + 1e-12)
                        || (r.cost_after.is_finite() && r.cost_before.is_infinite()),
                    "re-advise regressed: {} -> {}",
                    r.cost_before,
                    r.cost_after
                );
            }
        }
    }

    #[test]
    fn daemon_never_rebuilds_the_model() {
        let (_s, _q, pool, models) = fixture(2, 12);
        let mut advisor = OnlineAdvisor::new(pool, opts(10, 4));
        for (c, a) in &models {
            advisor.admit(c, a);
        }
        assert_eq!(advisor.stats().full_rebuilds, 0);
        assert!(advisor.stats().admit_arms_max > 0);
        assert!(advisor.stats().readvises > 0);
    }

    #[test]
    fn admit_collected_is_bit_identical_to_cold_collection() {
        let (schema, queries, pool, models) = fixture(2, 12);
        let optimizer = Optimizer::new(&schema.catalog);
        let builder = BuilderOptions::default();

        // Reference daemon: cold per-query collect_pinum artifacts.
        let mut cold = OnlineAdvisor::new(pool.clone(), opts(10, 4));
        // Streaming daemon: collection through the shared template cache.
        let mut shared = OnlineAdvisor::new(pool.clone(), opts(10, 4));
        let mut rels_total = 0usize;
        for (i, (c, a)) in models.iter().enumerate() {
            let (query, weight) = &queries[i];
            rels_total += query.relation_count();
            let adm_cold = cold.admit_weighted(c, a, *weight);
            let adm_shared = shared.admit_collected(&optimizer, query, &builder, *weight);
            assert_eq!(adm_cold.qid, adm_shared.qid);
            assert_eq!(adm_cold.evicted, adm_shared.evicted);
            assert_eq!(
                adm_cold.model_arms, adm_shared.model_arms,
                "admission {i}: spliced arms diverged"
            );
            assert_eq!(
                adm_cold.readvise.is_some(),
                adm_shared.readvise.is_some(),
                "admission {i}: trigger sequences diverged"
            );
            if let (Some(rc), Some(rs)) = (&adm_cold.readvise, &adm_shared.readvise) {
                assert_eq!(rc.trigger, rs.trigger);
                assert_eq!(rc.cost_before.to_bits(), rs.cost_before.to_bits());
                assert_eq!(rc.cost_after.to_bits(), rs.cost_after.to_bits());
                assert_eq!(rc.picks, rs.picks);
            }
        }
        assert_eq!(cold.selection(), shared.selection());
        assert_eq!(
            cold.current_cost().to_bits(),
            shared.current_cost().to_bits()
        );
        // The stream actually shared templates: far fewer collection calls
        // than relation instances, and the counters reconcile.
        let s = shared.stats();
        assert!(
            s.collect_calls < rels_total,
            "no template sharing: {} calls over {rels_total} relations",
            s.collect_calls
        );
        assert_eq!(s.collect_calls + s.collect_template_hits, rels_total);
        assert_eq!(shared.collector().optimizer_calls(), s.collect_calls);
        assert_eq!(shared.collector().group_count(), s.collect_calls);
        assert_eq!(cold.stats().collect_calls, 0, "cold path never collects");
    }

    #[test]
    fn runs_are_deterministic() {
        let (_s, queries, pool, models) = fixture(2, 10);
        let run = || {
            let mut advisor = OnlineAdvisor::new(pool.clone(), opts(8, 4));
            for (i, (c, a)) in models.iter().enumerate() {
                advisor.admit_weighted(c, a, queries[i].1);
            }
            (
                advisor.current_cost(),
                advisor.selection().ids().collect::<Vec<_>>(),
                advisor.stats().readvises,
                advisor.stats().drift_readvises,
            )
        };
        let (c1, s1, r1, d1) = run();
        let (c2, s2, r2, d2) = run();
        assert_eq!(c1.to_bits(), c2.to_bits());
        assert_eq!(s1, s2);
        assert_eq!((r1, d1), (r2, d2));
    }

    #[test]
    fn warm_and_cold_readvising_land_within_a_percent() {
        let (_s, _q, pool, models) = fixture(3, 10);
        let run = |warm: bool| {
            let mut advisor = OnlineAdvisor::new(
                pool.clone(),
                OnlineAdvisorOptions {
                    warm_start: warm,
                    ..opts(15, 6)
                },
            );
            for (c, a) in &models {
                advisor.admit(c, a);
            }
            advisor.readvise();
            advisor.current_cost()
        };
        let (w, c) = (run(true), run(false));
        assert!(w.is_finite() && c.is_finite());
        assert!(
            w <= c * 1.01,
            "warm-started steady state {w} more than 1% above cold {c}"
        );
    }

    #[test]
    fn compact_mid_stream_changes_nothing_observable() {
        let (_s, _q, pool, models) = fixture(2, 10);
        let run = |compact_at: Option<usize>| {
            let mut advisor = OnlineAdvisor::new(pool.clone(), opts(7, 5));
            for (i, (c, a)) in models.iter().enumerate() {
                advisor.admit(c, a);
                if compact_at == Some(i) {
                    advisor.compact();
                }
            }
            (
                advisor.current_cost(),
                advisor.selection().ids().collect::<Vec<_>>(),
                advisor.monitored_cost(),
            )
        };
        let (c_base, s_base, m_base) = run(None);
        let (c_cmp, s_cmp, m_cmp) = run(Some(12));
        assert_eq!(c_base.to_bits(), c_cmp.to_bits());
        assert_eq!(s_base, s_cmp);
        assert_eq!(m_base.to_bits(), m_cmp.to_bits());
    }

    #[test]
    fn long_streams_auto_compact_and_stay_window_sized() {
        let (_s, _q, pool, models) = fixture(3, 10);
        let window = 4;
        let mut advisor = OnlineAdvisor::new(pool, opts(window, 3));
        for (c, a) in &models {
            advisor.admit(c, a);
            // Slot count must track the window, not lifetime admissions:
            // compaction fires at re-advise once tombstones outnumber
            // live queries, and an epoch is never more than 3 admits away.
            assert!(
                advisor.model().query_count() <= 2 * window + 3,
                "model grew to {} slots on a {}-query window",
                advisor.model().query_count(),
                window
            );
        }
        assert!(
            advisor.stats().compactions > 0,
            "a 30-admission stream over a 4-query window never compacted"
        );
        assert_eq!(advisor.stats().full_rebuilds, 0);
        assert_eq!(advisor.window_len(), window);
    }

    #[test]
    fn decay_fades_resident_weights() {
        let (_s, _q, pool, models) = fixture(2, 10);
        let mut advisor = OnlineAdvisor::new(
            pool,
            OnlineAdvisorOptions {
                decay: 0.5,
                ..opts(20, 5)
            },
        );
        for (c, a) in &models[..10] {
            advisor.admit(c, a);
        }
        // Two epochs passed (admissions 5 and 10): the first resident
        // decayed twice, the most recent admission only once (it was in
        // the window when its own epoch boundary fired).
        let model = advisor.model();
        assert!(model.weight(0) <= 0.25 + 1e-12);
        assert!(model.weight(9) <= 0.5 + 1e-12);
        assert!(model.weight(0) < model.weight(9));
    }

    #[test]
    fn drift_detector_fires_on_a_template_shift() {
        // Build two deliberately different phases with a long epoch so
        // only the drift detector can trigger between boundaries.
        let (_s, _q, pool, models) = fixture(3, 12);
        let mut advisor = OnlineAdvisor::new(
            pool,
            OnlineAdvisorOptions {
                drift_threshold: 0.05,
                ..opts(36, 1_000_000)
            },
        );
        // Warm up on phase 0 and pin a baseline.
        for (c, a) in &models[..12] {
            advisor.admit(c, a);
        }
        advisor.readvise();
        // Stream the later phases; the mix shift should regress the old
        // selection enough to fire Drift before any epoch boundary.
        let mut drifted = false;
        for (c, a) in &models[12..] {
            if let Some(r) = advisor.admit(c, a).readvise {
                assert_eq!(r.trigger, ReadviseTrigger::Drift);
                drifted = true;
                break;
            }
        }
        assert!(drifted, "template shift never fired the drift detector");
    }
}
