//! # Template-scoped drift attribution
//!
//! The mean-based drift detector answers *whether* the live window's
//! priced cost regressed — not *where*. This module adds the "where":
//! every admission can carry the query's [`TemplateKey`]s (the
//! `(table, filter shape)` signatures of `pinum_query::RelTemplate` that
//! batched collection already groups by), and the attribution tracks how
//! each template's share of the priced cost moved **since the last
//! re-advise**.
//!
//! When drift fires, [`DriftAttribution::regressed_queries`] compares the
//! current per-template cost sums (read off the session's exact
//! [`PricedWorkload`] — no re-pricing) against the sums captured right
//! after the last re-advise. Templates whose sum regressed past the
//! threshold — including templates *unseen* at the baseline, whose
//! baseline is 0 — mark their member queries as regressed; the online
//! advisor then intersects the model's inverted candidate→query index
//! with that query set to build a [`pinum_core::Selection`] mask, and the
//! search only probes candidates that can matter
//! (`SearchStrategy::search_scoped`).
//!
//! Attribution is conservative by construction:
//!
//! * a query admitted **without** template info cannot be ruled out, so
//!   it counts as regressed in every localized scope the attribution
//!   builds;
//! * when **no** live query carries template info, or no template
//!   regressed past the threshold (diffuse drift the per-template lens
//!   cannot localize — possibly caused by the very queries it cannot
//!   see), `regressed_queries` returns `None` and the caller falls back
//!   to the full-scope search — bit-identical to the unscoped daemon.
//!
//! The sums are plain reads over the session's per-query costs, computed
//! only when a re-advise actually fires, so steady-state admissions pay
//! one `Vec` push here and nothing else.

use pinum_core::PricedWorkload;
use pinum_query::TemplateKey;
use std::collections::HashMap;

/// How a multi-template query's priced cost is credited to its templates
/// when attribution sums per-template costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharePolicy {
    /// Divide the query's cost evenly across its templates (cost /
    /// template count). A wide join no longer inflates *every* template
    /// it touches by its full cost, so a genuinely hot template stands
    /// out sooner and scoped masks stay sharp. The default.
    #[default]
    Split,
    /// Credit the full cost to every template the query carries — the
    /// original (pre-split) accounting, kept as an escape hatch. Sums
    /// under `Full` dominate sums under [`SharePolicy::Split`] term by
    /// term in every state, so `Split` stops a single wide query's
    /// regression from inflating *all* of its templates past the
    /// threshold at once — the failure mode that made `Full` masks
    /// balloon to near-full scope.
    Full,
    /// Divide the query's cost across its templates in proportion to
    /// each relation's share of the query's access costs (recorded at
    /// admission from the cheapest access arm per relation). A wide join
    /// whose cost lives almost entirely in its fact-table scan credits
    /// that template with almost all of the movement, instead of
    /// spraying an even 1/N over dimension templates whose scans are
    /// noise — so the mask pins on the template that actually moved the
    /// money. Falls back to the even [`SharePolicy::Split`] weighting
    /// for admissions that carried no share data. Like `Split`, sums
    /// under `Full` dominate these term by term, so the mask only ever
    /// shrinks relative to `Full`.
    AccessShare,
}

/// Liveness/attribution status of one query slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Evicted (or compacted away); contributes nowhere.
    Dead,
    /// Live but admitted without template info — rides along in every
    /// localized scope (it can never be ruled out).
    Unattributed,
    /// Live with template info.
    Attributed,
}

/// The attribution books exploded into plain data — the serialization
/// surface of [`DriftAttribution::to_parts`] /
/// [`DriftAttribution::from_parts`]. The intern map travels as the key
/// list in dense id order (index = id), which also fixes a
/// serialization order for a structure whose in-memory iteration order
/// is nondeterministic; the live counters are derived and rebuilt on
/// import.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DriftAttributionParts {
    /// Interned template keys, index = dense template id.
    pub templates: Vec<TemplateKey>,
    /// Query slot → template ids (empty for dead/unattributed slots).
    pub per_query: Vec<Vec<u32>>,
    /// Query slot → normalized shares, parallel to `per_query`.
    pub per_query_share: Vec<Vec<f64>>,
    /// Query slot status: 0 = dead, 1 = unattributed, 2 = attributed.
    pub status: Vec<u8>,
    /// Per-template baseline sums (may be shorter than `templates` —
    /// templates interned after the capture baseline at 0.0).
    pub baseline: Vec<f64>,
    pub baseline_captured: bool,
    pub share_policy: SharePolicy,
    pub baseline_policy: SharePolicy,
}

/// Per-template priced-cost tracking across re-advises. See module docs.
#[derive(Debug, Default)]
pub struct DriftAttribution {
    /// Template key → dense template id.
    intern: HashMap<TemplateKey, u32>,
    /// Query slot → template ids it carries (deduplicated; empty for
    /// dead or unattributed slots).
    per_query: Vec<Vec<u32>>,
    /// Query slot → normalized cost share per template id (parallel to
    /// `per_query`, summing to 1.0 for live attributed slots). Even
    /// 1/N when the admission carried no share data.
    per_query_share: Vec<Vec<f64>>,
    status: Vec<Status>,
    /// Live attributed / unattributed slot counts (cheap invariants for
    /// the fallback decisions).
    attributed_live: usize,
    unattributed_live: usize,
    /// Per-template cost sums captured right after the last re-advise;
    /// templates interned later implicitly baseline at 0.0.
    baseline: Vec<f64>,
    baseline_captured: bool,
    /// How multi-template queries split their cost across templates (the
    /// configured policy; applied starting at the next baseline capture).
    share_policy: SharePolicy,
    /// The policy the captured baseline was summed under. Comparisons
    /// against that baseline always use this stamped policy, never the
    /// configured one — sums computed under different accounting are not
    /// comparable, so a `set_share_policy` between a capture and its
    /// comparison must not leak in.
    baseline_policy: SharePolicy,
}

impl DriftAttribution {
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct templates seen so far.
    pub fn template_count(&self) -> usize {
        self.intern.len()
    }

    /// Live queries that carried template info at admission.
    pub fn attributed_live(&self) -> usize {
        self.attributed_live
    }

    /// Switches the cost-sharing policy (see [`SharePolicy`]). Takes
    /// effect at the *next* [`Self::capture_baseline`]: the policy is
    /// stamped into each captured baseline, and [`Self::regressed_queries`]
    /// always sums the current state under the stamped policy — so a
    /// baseline and its comparison are never computed under different
    /// accounting, no matter when the switch happens.
    pub fn set_share_policy(&mut self, policy: SharePolicy) {
        self.share_policy = policy;
    }

    /// The active cost-sharing policy.
    pub fn share_policy(&self) -> SharePolicy {
        self.share_policy
    }

    /// Records one admission. `qid` must be the next query slot (the
    /// streaming model issues them densely); `templates` may be empty,
    /// which marks the query unattributed (conservatively regressed).
    /// Cost shares are the even split; use [`Self::admit_with_shares`] to
    /// record per-relation access-cost weights for
    /// [`SharePolicy::AccessShare`].
    pub fn admit(&mut self, qid: usize, templates: &[TemplateKey]) {
        self.admit_with_shares(qid, templates, &[]);
    }

    /// [`Self::admit`] with per-template cost weights, aligned with
    /// `templates` (one per relation — relations carrying the same
    /// template pool their weights). Pass an empty slice (or weights
    /// that don't sum to something positive and finite) to fall back to
    /// the even split.
    pub fn admit_with_shares(&mut self, qid: usize, templates: &[TemplateKey], shares: &[f64]) {
        assert_eq!(
            qid,
            self.per_query.len(),
            "attribution fell out of step with the model's query ids"
        );
        if templates.is_empty() {
            self.per_query.push(Vec::new());
            self.per_query_share.push(Vec::new());
            self.status.push(Status::Unattributed);
            self.unattributed_live += 1;
            return;
        }
        assert!(
            shares.is_empty() || shares.len() == templates.len(),
            "cost shares must align with templates"
        );
        let total: f64 = shares.iter().copied().filter(|s| *s > 0.0).sum();
        let even = 1.0 / templates.len() as f64;
        let mut pairs: Vec<(u32, f64)> = templates
            .iter()
            .enumerate()
            .map(|(i, key)| {
                let id = match self.intern.get(key) {
                    Some(&id) => id,
                    None => {
                        let id = self.intern.len() as u32;
                        self.intern.insert(key.clone(), id);
                        id
                    }
                };
                let weight = if total > 0.0 && total.is_finite() {
                    shares[i].max(0.0) / total
                } else {
                    even
                };
                (id, weight)
            })
            .collect();
        // Relations carrying the same template pool their shares.
        pairs.sort_by_key(|a| a.0);
        let mut ids = Vec::with_capacity(pairs.len());
        let mut weights: Vec<f64> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            if ids.last() == Some(&id) {
                *weights.last_mut().expect("parallel to ids") += w;
            } else {
                ids.push(id);
                weights.push(w);
            }
        }
        self.per_query.push(ids);
        self.per_query_share.push(weights);
        self.status.push(Status::Attributed);
        self.attributed_live += 1;
    }

    /// Records an eviction; the slot stops contributing to template sums
    /// (its priced cost is 0.0 from here on anyway).
    pub fn evict(&mut self, qid: usize) {
        match self.status[qid] {
            Status::Attributed => self.attributed_live -= 1,
            Status::Unattributed => self.unattributed_live -= 1,
            Status::Dead => panic!("evicting already-dead attribution slot {qid}"),
        }
        self.status[qid] = Status::Dead;
        self.per_query[qid] = Vec::new();
        self.per_query_share[qid] = Vec::new();
    }

    /// Applies a model compaction's old→new id mapping (`u32::MAX` for
    /// dropped slots).
    pub fn remap(&mut self, remap: &[u32]) {
        assert_eq!(remap.len(), self.per_query.len(), "stale compaction remap");
        let live = remap.iter().filter(|&&n| n != u32::MAX).count();
        let mut per_query = vec![Vec::new(); live];
        let mut per_query_share = vec![Vec::new(); live];
        let mut status = vec![Status::Dead; live];
        for (old, &new) in remap.iter().enumerate() {
            if new != u32::MAX {
                per_query[new as usize] = std::mem::take(&mut self.per_query[old]);
                per_query_share[new as usize] = std::mem::take(&mut self.per_query_share[old]);
                status[new as usize] = self.status[old];
            }
        }
        self.per_query = per_query;
        self.per_query_share = per_query_share;
        self.status = status;
    }

    /// Exports the books as plain data (see [`DriftAttributionParts`]).
    /// Round-tripping through [`Self::from_parts`] reproduces the books
    /// exactly — including the intern ids, so scoped-re-advise masks
    /// computed after a restore are bit-identical.
    pub fn to_parts(&self) -> DriftAttributionParts {
        // Ids are interned densely (0..len), so sorting by id linearizes
        // the map deterministically regardless of its iteration order.
        let mut pairs: Vec<(&TemplateKey, u32)> =
            self.intern.iter().map(|(k, &id)| (k, id)).collect();
        pairs.sort_unstable_by_key(|&(_, id)| id);
        let templates: Vec<TemplateKey> = pairs.into_iter().map(|(k, _)| k.clone()).collect();
        DriftAttributionParts {
            templates,
            per_query: self.per_query.clone(),
            per_query_share: self.per_query_share.clone(),
            status: self
                .status
                .iter()
                .map(|s| match s {
                    Status::Dead => 0,
                    Status::Unattributed => 1,
                    Status::Attributed => 2,
                })
                .collect(),
            baseline: self.baseline.clone(),
            baseline_captured: self.baseline_captured,
            share_policy: self.share_policy,
            baseline_policy: self.baseline_policy,
        }
    }

    /// Rebuilds the books from exported parts, validating shape (status
    /// bytes, parallel-array lengths, template-id bounds, per-status
    /// emptiness) and recomputing the live counters. Typed errors, never
    /// panics — parts arrive from disk.
    pub fn from_parts(parts: DriftAttributionParts) -> Result<Self, &'static str> {
        let DriftAttributionParts {
            templates,
            per_query,
            per_query_share,
            status,
            baseline,
            baseline_captured,
            share_policy,
            baseline_policy,
        } = parts;
        let mut intern = HashMap::with_capacity(templates.len());
        for (id, key) in templates.iter().enumerate() {
            if intern.insert(key.clone(), id as u32).is_some() {
                return Err("duplicate interned template key");
            }
        }
        let n = per_query.len();
        if per_query_share.len() != n || status.len() != n {
            return Err("attribution query arrays differ in length");
        }
        if baseline.len() > templates.len() {
            return Err("baseline longer than the template table");
        }
        let mut attributed_live = 0usize;
        let mut unattributed_live = 0usize;
        let mut parsed_status = Vec::with_capacity(n);
        for qid in 0..n {
            let ids = &per_query[qid];
            let shares = &per_query_share[qid];
            if shares.len() != ids.len() {
                return Err("template shares not parallel to template ids");
            }
            if ids.iter().any(|&t| t as usize >= templates.len()) {
                return Err("template id outside the interned table");
            }
            if ids.windows(2).any(|w| w[0] >= w[1]) {
                return Err("per-query template ids not sorted distinct");
            }
            let status = match status[qid] {
                0 => Status::Dead,
                1 => Status::Unattributed,
                2 => Status::Attributed,
                _ => return Err("unknown attribution status byte"),
            };
            match status {
                Status::Dead | Status::Unattributed => {
                    if !ids.is_empty() {
                        return Err("dead or unattributed slot retains template ids");
                    }
                    if status == Status::Unattributed {
                        unattributed_live += 1;
                    }
                }
                Status::Attributed => {
                    if ids.is_empty() {
                        return Err("attributed slot has no template ids");
                    }
                    attributed_live += 1;
                }
            }
            parsed_status.push(status);
        }
        Ok(Self {
            intern,
            per_query,
            per_query_share,
            status: parsed_status,
            attributed_live,
            unattributed_live,
            baseline,
            baseline_captured,
            share_policy,
            baseline_policy,
        })
    }

    /// Per-template cost sums under the given priced state and sharing
    /// policy. Under [`SharePolicy::Split`] a query's cost is divided
    /// evenly across its templates; under [`SharePolicy::Full`] the full
    /// cost is credited to every template it carries; under
    /// [`SharePolicy::AccessShare`] it is divided by the normalized
    /// access-cost weights recorded at admission.
    fn template_sums(&self, state: &PricedWorkload, policy: SharePolicy) -> Vec<f64> {
        let mut sums = vec![0.0; self.intern.len()];
        for (qid, ids) in self.per_query.iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            let cost = state.per_query()[qid];
            match policy {
                SharePolicy::Split => {
                    let share = cost / ids.len() as f64;
                    for &t in ids {
                        sums[t as usize] += share;
                    }
                }
                SharePolicy::Full => {
                    for &t in ids {
                        sums[t as usize] += cost;
                    }
                }
                SharePolicy::AccessShare => {
                    for (&t, &w) in ids.iter().zip(&self.per_query_share[qid]) {
                        sums[t as usize] += cost * w;
                    }
                }
            }
        }
        sums
    }

    /// Captures the post-re-advise baseline from the session's exact
    /// priced state, stamping the configured [`SharePolicy`] into it —
    /// every comparison against this baseline uses the stamped policy.
    pub fn capture_baseline(&mut self, state: &PricedWorkload) {
        self.baseline_policy = self.share_policy;
        self.baseline = self.template_sums(state, self.baseline_policy);
        self.baseline_captured = true;
    }

    /// The live queries a fired drift can be pinned on: members of
    /// templates whose cost sum regressed more than `threshold`
    /// (relative) since the baseline, plus — whenever some template did
    /// regress — every live unattributed query (they cannot be ruled
    /// out, so they ride along in any localized scope).
    ///
    /// Returns `None` — "search everything" — when the per-template lens
    /// has nothing to say: no baseline yet, no attributed queries live,
    /// or **no template regressed past the threshold** (diffuse drift
    /// spread under the per-template bar, or drift coming entirely from
    /// queries the lens cannot see — either way the full scope is the
    /// only honest answer).
    pub fn regressed_queries(&self, state: &PricedWorkload, threshold: f64) -> Option<Vec<u32>> {
        if !self.baseline_captured || self.attributed_live == 0 {
            return None;
        }
        // Summed under the policy stamped at capture time, so both sides
        // of the comparison use the same accounting even if the
        // configured policy changed since.
        let current = self.template_sums(state, self.baseline_policy);
        let regressed_template: Vec<bool> = current
            .iter()
            .enumerate()
            .map(|(t, &now)| {
                let base = self.baseline.get(t).copied().unwrap_or(0.0);
                // Strict `>` keeps inf-vs-inf (an unpriceable template
                // both then and now) out of the regressed set; a template
                // newly priced at inf regresses past any finite baseline.
                now > base * (1.0 + threshold)
            })
            .collect();
        if !regressed_template.iter().any(|&r| r) {
            return None;
        }
        let regressed: Vec<u32> = self
            .per_query
            .iter()
            .enumerate()
            .filter(|(qid, ids)| match self.status[*qid] {
                Status::Dead => false,
                Status::Unattributed => true,
                Status::Attributed => ids.iter().any(|&t| regressed_template[t as usize]),
            })
            .map(|(qid, _)| qid as u32)
            .collect();
        if regressed.is_empty() {
            return None;
        }
        Some(regressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Catalog, Column, ColumnType, Table};
    use pinum_query::{QueryBuilder, RelIdx, RelTemplate};

    fn keys() -> Vec<TemplateKey> {
        let mut cat = Catalog::new();
        for name in ["a", "b", "c"] {
            cat.add_table(Table::new(
                name,
                10_000,
                vec![
                    Column::new("k", ColumnType::Int8).with_ndv(10_000),
                    Column::new("v", ColumnType::Int4).with_ndv(100),
                ],
            ));
        }
        let q = QueryBuilder::new("q", &cat)
            .table("a")
            .table("b")
            .table("c")
            .join(("a", "k"), ("b", "k"))
            .join(("a", "k"), ("c", "k"))
            .filter_range(("a", "v"), 0.0, 10.0)
            .build();
        (0..q.relation_count() as RelIdx)
            .map(|rel| RelTemplate::of(&q, rel).key())
            .collect()
    }

    fn state(costs: &[f64]) -> PricedWorkload {
        PricedWorkload::from_costs(costs.to_vec())
    }

    #[test]
    fn regression_is_pinned_on_the_hot_template() {
        let k = keys();
        let mut attr = DriftAttribution::new();
        attr.admit(0, &[k[0].clone()]);
        attr.admit(1, &[k[1].clone()]);
        attr.admit(2, &[k[0].clone(), k[2].clone()]);
        assert_eq!(attr.template_count(), 3);
        attr.capture_baseline(&state(&[10.0, 10.0, 10.0]));
        // Template k[1]'s only member doubled; the rest held still.
        let regressed = attr
            .regressed_queries(&state(&[10.0, 25.0, 10.0]), 0.2)
            .expect("a template regressed");
        assert_eq!(regressed, vec![1]);
    }

    #[test]
    fn unseen_templates_regress_from_a_zero_baseline() {
        let k = keys();
        let mut attr = DriftAttribution::new();
        attr.admit(0, &[k[0].clone()]);
        attr.capture_baseline(&state(&[10.0]));
        // A new phase's template arrives after the baseline.
        attr.admit(1, &[k[1].clone()]);
        let regressed = attr
            .regressed_queries(&state(&[10.0, 5.0]), 0.2)
            .expect("new template must be in scope");
        assert_eq!(regressed, vec![1]);
    }

    #[test]
    fn unattributed_admissions_ride_along_in_every_localized_scope() {
        let k = keys();
        let mut attr = DriftAttribution::new();
        attr.admit(0, &[k[0].clone()]);
        attr.admit(1, &[]);
        attr.capture_baseline(&state(&[10.0, 10.0]));
        // Template k[0] regressed: the scope must hold its member *and*
        // the unattributed query, which can never be ruled out.
        let regressed = attr
            .regressed_queries(&state(&[25.0, 10.0]), 0.2)
            .expect("a template regressed");
        assert_eq!(regressed, vec![0, 1]);
    }

    #[test]
    fn diffuse_or_absent_regression_falls_back_to_full_scope() {
        let k = keys();
        let mut attr = DriftAttribution::new();
        // No baseline yet.
        attr.admit(0, &[k[0].clone()]);
        assert!(attr.regressed_queries(&state(&[10.0]), 0.2).is_none());
        // Baseline captured, nothing regressed.
        attr.capture_baseline(&state(&[10.0]));
        assert!(attr.regressed_queries(&state(&[10.0]), 0.2).is_none());
        // No template regressed but an unattributed query is live: the
        // drift may well come from the query the lens cannot see — full
        // scope, not a mask around the blind spot.
        let mut mixed = DriftAttribution::new();
        mixed.admit(0, &[k[0].clone()]);
        mixed.admit(1, &[]);
        mixed.capture_baseline(&state(&[10.0, 10.0]));
        assert!(mixed
            .regressed_queries(&state(&[10.0, 99.0]), 0.2)
            .is_none());
        // No attributed queries at all.
        let mut blind = DriftAttribution::new();
        blind.admit(0, &[]);
        blind.capture_baseline(&state(&[10.0]));
        assert!(blind.regressed_queries(&state(&[99.0]), 0.2).is_none());
    }

    #[test]
    fn share_splitting_only_shrinks_the_mask() {
        let k = keys();
        // Query 0 carries T1 alone and holds still; query 1 carries
        // T1 + T2 and regresses. Under `Full` its regression bleeds into
        // T1's sum and drags the stable query into the scope; under
        // `Split` only half of it lands on T1 — below the threshold — so
        // the mask pins exactly the regressing query.
        let build = |policy: SharePolicy| {
            let mut attr = DriftAttribution::new();
            attr.set_share_policy(policy);
            attr.admit(0, &[k[0].clone()]);
            attr.admit(1, &[k[0].clone(), k[1].clone()]);
            attr.capture_baseline(&state(&[10.0, 10.0]));
            attr.regressed_queries(&state(&[10.0, 16.0]), 0.2)
                .expect("a template regressed under both policies")
        };
        let full = build(SharePolicy::Full);
        let split = build(SharePolicy::Split);
        assert_eq!(full, vec![0, 1], "Full credits q1's rise to T1 too");
        assert_eq!(split, vec![1], "Split pins the mask on the mover");
        // Sharper accounting must not invent scope: the split mask only
        // shrinks relative to the full mask.
        assert!(split.iter().all(|q| full.contains(q)));
    }

    #[test]
    fn access_shares_pin_the_mask_on_the_template_that_moved_the_money() {
        let k = keys();
        // Wide-join fixture: query 0 carries T0 alone; query 1 joins the
        // T0 relation (90% of its access cost) with a cheap T1 dimension
        // (10%)... except here it is T1 that holds the money: q1's cost
        // lives in T1's relation (90%) and barely touches T0 (10%).
        // When q1 regresses 10 → 16:
        //   Full:        T0 sum 20 → 26 (+30% > 20%): both queries in scope.
        //   AccessShare: T0 sum 11 → 11.6 (+5.5%): only q1 in scope.
        let build = |policy: SharePolicy, shares: &[f64]| {
            let mut attr = DriftAttribution::new();
            attr.set_share_policy(policy);
            attr.admit(0, &[k[0].clone()]);
            attr.admit_with_shares(1, &[k[0].clone(), k[1].clone()], shares);
            attr.capture_baseline(&state(&[10.0, 10.0]));
            attr.regressed_queries(&state(&[10.0, 16.0]), 0.2)
                .expect("a template regressed under both policies")
        };
        let full = build(SharePolicy::Full, &[1.0, 9.0]);
        let access = build(SharePolicy::AccessShare, &[1.0, 9.0]);
        assert_eq!(full, vec![0, 1], "Full drags the stable T0 member in");
        assert_eq!(access, vec![1], "AccessShare pins the mover");
        // The sharper lens must only shrink the mask, never grow it.
        assert!(access.iter().all(|q| full.contains(q)));
    }

    #[test]
    fn access_share_without_share_data_falls_back_to_the_even_split() {
        let k = keys();
        let run = |policy: SharePolicy, shares: &[f64]| {
            let mut attr = DriftAttribution::new();
            attr.set_share_policy(policy);
            attr.admit(0, &[k[0].clone()]);
            attr.admit_with_shares(1, &[k[0].clone(), k[1].clone()], shares);
            attr.capture_baseline(&state(&[10.0, 10.0]));
            attr.regressed_queries(&state(&[10.0, 16.0]), 0.2)
        };
        // No shares, zero shares, and non-finite shares all degrade to
        // exactly Split's accounting.
        let split = run(SharePolicy::Split, &[]);
        for degenerate in [&[][..], &[0.0, 0.0][..], &[f64::INFINITY, 1.0][..]] {
            assert_eq!(run(SharePolicy::AccessShare, degenerate), split);
        }
    }

    #[test]
    fn shares_pool_when_relations_repeat_a_template_and_survive_remap() {
        let k = keys();
        let mut attr = DriftAttribution::new();
        attr.set_share_policy(SharePolicy::AccessShare);
        // Self-join shape: two relations carry the same template; their
        // shares pool onto one id, totalling 1.0 with T1's remainder.
        attr.admit_with_shares(
            0,
            &[k[0].clone(), k[0].clone(), k[1].clone()],
            &[3.0, 1.0, 1.0],
        );
        attr.admit(1, &[k[1].clone()]);
        attr.capture_baseline(&state(&[10.0, 10.0]));
        // q0 rises 10 → 14: T0 carries 0.8 of it (8 → 11.2, +40%),
        // T1 only 0.2 (12 → 12.8, +6.7%) — the mask holds q0 alone.
        let regressed = attr
            .regressed_queries(&state(&[14.0, 10.0]), 0.2)
            .expect("T0 regressed");
        assert_eq!(regressed, vec![0]);
        // Compaction: q0 dies, q1 slides to slot 0 and keeps working.
        attr.evict(0);
        attr.remap(&[u32::MAX, 0]);
        attr.capture_baseline(&state(&[10.0]));
        let regressed = attr
            .regressed_queries(&state(&[30.0]), 0.2)
            .expect("T1 regressed after remap");
        assert_eq!(regressed, vec![0]);
    }

    #[test]
    fn policy_switch_between_capture_and_compare_uses_the_stamped_policy() {
        let k = keys();
        // Same fixture as `share_splitting_only_shrinks_the_mask`: the
        // policies disagree on whether q1's rise drags q0 into scope.
        let mut attr = DriftAttribution::new();
        attr.set_share_policy(SharePolicy::Full);
        attr.admit(0, &[k[0].clone()]);
        attr.admit(1, &[k[0].clone(), k[1].clone()]);
        attr.capture_baseline(&state(&[10.0, 10.0]));
        // Switching after the capture must not change the accounting the
        // captured baseline is compared under: still Full.
        attr.set_share_policy(SharePolicy::Split);
        let regressed = attr
            .regressed_queries(&state(&[10.0, 16.0]), 0.2)
            .expect("a template regressed");
        assert_eq!(regressed, vec![0, 1], "comparison leaked the new policy");
        // The next capture picks the switched policy up.
        attr.capture_baseline(&state(&[10.0, 10.0]));
        let regressed = attr
            .regressed_queries(&state(&[10.0, 16.0]), 0.2)
            .expect("a template regressed");
        assert_eq!(regressed, vec![1], "Split applies from the new baseline");
    }

    #[test]
    fn eviction_and_remap_keep_the_books() {
        let k = keys();
        let mut attr = DriftAttribution::new();
        attr.admit(0, &[k[0].clone()]);
        attr.admit(1, &[k[1].clone()]);
        attr.admit(2, &[k[1].clone()]);
        attr.evict(0);
        assert_eq!(attr.attributed_live(), 2);
        attr.capture_baseline(&state(&[0.0, 10.0, 10.0]));
        // Compact: slot 0 dies, 1→0, 2→1.
        attr.remap(&[u32::MAX, 0, 1]);
        attr.capture_baseline(&state(&[10.0, 10.0]));
        let regressed = attr
            .regressed_queries(&state(&[10.0, 30.0]), 0.2)
            .expect("regression after remap");
        // Both survivors carry k[1], whose sum regressed.
        assert_eq!(regressed, vec![0, 1]);
    }
}
