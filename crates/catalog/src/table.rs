//! Base tables: column definitions, row counts and heap page estimates.

use crate::page;
use crate::stats::ColumnStats;
use crate::types::{aligned_tuple_width, ColumnRef, ColumnType, TableId};

/// A column definition together with its statistics.
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    ty: ColumnType,
    stats: ColumnStats,
}

impl Column {
    /// A new column with default (uniform) statistics.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
            stats: ColumnStats::default(),
        }
    }

    /// Replaces the statistics wholesale.
    pub fn with_stats(mut self, stats: ColumnStats) -> Self {
        self.stats = stats;
        self
    }

    /// Convenience: sets the distinct count, keeping a uniform histogram
    /// over `[0, ndv)` (the paper's columns are uniform positive integers).
    pub fn with_ndv(mut self, ndv: u64) -> Self {
        self.stats = ColumnStats::uniform(0.0, ndv as f64, ndv as f64);
        self
    }

    /// Marks the column as physically correlated with the heap order
    /// (e.g. a serially assigned key).
    pub fn with_correlation(mut self, corr: f64) -> Self {
        self.stats.correlation = corr.clamp(-1.0, 1.0);
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn ty(&self) -> ColumnType {
        self.ty
    }

    pub fn stats(&self) -> &ColumnStats {
        &self.stats
    }

    pub fn stats_mut(&mut self) -> &mut ColumnStats {
        &mut self.stats
    }
}

/// A base table: columns, cardinality, and derived storage footprint.
#[derive(Debug, Clone)]
pub struct Table {
    id: TableId,
    name: String,
    rows: u64,
    columns: Vec<Column>,
}

impl Table {
    /// Creates a table; the id is assigned when it is added to a catalog.
    pub fn new(name: impl Into<String>, rows: u64, columns: Vec<Column>) -> Self {
        assert!(!columns.is_empty(), "tables need at least one column");
        Self {
            id: TableId(u32::MAX),
            name: name.into(),
            rows,
            columns,
        }
    }

    pub(crate) fn assign_id(&mut self, id: TableId) {
        self.id = id;
    }

    pub fn id(&self) -> TableId {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Estimated number of rows (`pg_class.reltuples`).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    pub fn set_rows(&mut self, rows: u64) {
        self.rows = rows;
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn column(&self, ordinal: u16) -> &Column {
        &self.columns[ordinal as usize]
    }

    pub fn column_mut(&mut self, ordinal: u16) -> &mut Column {
        &mut self.columns[ordinal as usize]
    }

    /// Ordinal of the column with this name.
    pub fn column_ordinal(&self, name: &str) -> Option<u16> {
        self.columns
            .iter()
            .position(|c| c.name() == name)
            .map(|i| i as u16)
    }

    /// A [`ColumnRef`] for one of this table's columns.
    pub fn col(&self, ordinal: u16) -> ColumnRef {
        assert!((ordinal as usize) < self.columns.len());
        ColumnRef::new(self.id, ordinal)
    }

    /// Average heap tuple width, including the aligned tuple header.
    pub fn tuple_width(&self) -> u32 {
        aligned_tuple_width(
            page::HEAP_TUPLE_HEADER,
            self.columns
                .iter()
                .map(Column::ty)
                .collect::<Vec<_>>()
                .iter(),
        )
    }

    /// Average width of just the data payload for a subset of columns
    /// (used for sort/hash width estimates).
    pub fn data_width(&self, ordinals: &[u16]) -> u32 {
        aligned_tuple_width(
            0,
            ordinals
                .iter()
                .map(|o| self.columns[*o as usize].ty())
                .collect::<Vec<_>>()
                .iter(),
        )
    }

    /// Estimated heap pages (`pg_class.relpages`).
    pub fn heap_pages(&self) -> u64 {
        page::heap_pages(self.rows, self.tuple_width())
    }

    /// Total heap bytes.
    pub fn heap_bytes(&self) -> u64 {
        self.heap_pages() * page::BLOCK_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(
            "t",
            10_000,
            vec![
                Column::new("a", ColumnType::Int8).with_ndv(10_000),
                Column::new("b", ColumnType::Int4).with_ndv(100),
                Column::new("c", ColumnType::Int4).with_ndv(50),
            ],
        )
    }

    #[test]
    fn tuple_width_includes_header_and_padding() {
        let table = t();
        // header 23→24, int8 at 24→32, two int4 at 32..40, MAXALIGN → 40.
        assert_eq!(table.tuple_width(), 40);
    }

    #[test]
    fn heap_pages_scale_with_rows() {
        let table = t();
        let p = table.heap_pages();
        assert!(p > 0);
        let mut bigger = t();
        bigger.set_rows(20_000);
        assert!(bigger.heap_pages() >= 2 * p - 1);
    }

    #[test]
    fn column_lookup() {
        let table = t();
        assert_eq!(table.column_ordinal("b"), Some(1));
        assert_eq!(table.column_ordinal("zz"), None);
        assert_eq!(table.column(2).name(), "c");
    }

    #[test]
    fn data_width_subset() {
        let table = t();
        // one int4 → 4 bytes, MAXALIGNed to 8.
        assert_eq!(table.data_width(&[1]), 8);
        // int8 + int4 → 12, aligned to 16.
        assert_eq!(table.data_width(&[0, 1]), 16);
    }
}
