//! What-if index helpers (paper §V-A).
//!
//! "To determine the optimal plans in presence of an index, the query
//! optimizer uses two types of statistical information — the size of the
//! index, and histograms of the columns in the index. Since the histogram
//! information is associated with the table, we do not replicate or modify
//! them. To compute size, we use the average attribute size, the total
//! number of rows, and the attribute alignments to find the number of leaf
//! pages required to store the index."
//!
//! The size model itself lives in [`crate::index`]; this module adds the
//! comparison utilities used by the what-if accuracy experiment (§VI-B).

use crate::index::{Index, IndexKind};
use crate::table::Table;

/// Builds the what-if twin of a materialized index definition.
pub fn hypothetical_twin(table: &Table, materialized: &Index) -> Index {
    assert_eq!(materialized.table(), table.id());
    Index::hypothetical(
        table,
        materialized.key_columns().to_vec(),
        materialized.is_unique(),
    )
}

/// Builds the materialized twin of a what-if index definition.
pub fn materialized_twin(table: &Table, hypothetical: &Index) -> Index {
    assert_eq!(hypothetical.table(), table.id());
    Index::materialized(
        table,
        hypothetical.key_columns().to_vec(),
        hypothetical.is_unique(),
    )
}

/// Relative page-count error of the what-if size model for one index:
/// `(materialized_pages - whatif_pages) / materialized_pages`.
///
/// This is the mechanical source of the paper's 0.33 % average cost error:
/// what-if sizing skips internal pages.
pub fn size_error(table: &Table, key_columns: &[u16]) -> f64 {
    let m = Index::materialized(table, key_columns.to_vec(), false);
    let h = Index::hypothetical(table, key_columns.to_vec(), false);
    let mp = m.size().total_pages() as f64;
    let hp = h.size().total_pages() as f64;
    (mp - hp) / mp
}

/// Checks that an index is of the expected kind; useful in debug asserts at
/// API boundaries.
pub fn ensure_kind(index: &Index, kind: IndexKind) {
    debug_assert_eq!(
        index.kind(),
        kind,
        "unexpected index kind for {}",
        index.name()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;
    use crate::types::{ColumnType, TableId};

    fn table(rows: u64) -> Table {
        let mut t = Table::new(
            "t",
            rows,
            vec![
                Column::new("a", ColumnType::Int8).with_ndv(rows.max(1)),
                Column::new("b", ColumnType::Int4).with_ndv(1000),
            ],
        );
        t.assign_id(TableId(0));
        t
    }

    #[test]
    fn twins_roundtrip() {
        let t = table(1_000_000);
        let m = Index::materialized(&t, vec![0, 1], true);
        let h = hypothetical_twin(&t, &m);
        assert_eq!(h.key_columns(), m.key_columns());
        assert_eq!(h.is_unique(), m.is_unique());
        assert_eq!(h.kind(), IndexKind::Hypothetical);
        let m2 = materialized_twin(&t, &h);
        assert_eq!(m2.size(), m.size());
    }

    #[test]
    fn size_error_is_small_but_positive_for_large_indexes() {
        let t = table(50_000_000);
        let err = size_error(&t, &[0]);
        assert!(err > 0.0, "materialized must be at least as large");
        assert!(err < 0.02, "error {err} should stay below 2 %");
    }

    #[test]
    fn size_error_larger_for_tiny_indexes() {
        // "they affect the relative page sizes only on very small indexes"
        let big = size_error(&table(50_000_000), &[0]);
        let tiny = size_error(&table(2_000), &[0]);
        assert!(tiny >= big);
    }
}
