//! # pinum-catalog
//!
//! Relational catalog and statistics substrate for the PINUM reproduction
//! ("Caching All Plans with Just One Optimizer Call", ICDE 2010).
//!
//! The paper's optimizer (PostgreSQL 8.3) consumes *statistics only*:
//! row counts, column widths, distinct counts, histograms, and index sizes.
//! This crate provides those, together with the two index size models the
//! paper contrasts in its what-if accuracy experiment (§VI-B):
//!
//! * **what-if (hypothetical) indexes** — sized from average attribute
//!   widths, alignment, and row counts, counting *leaf pages only*
//!   (paper §V-A);
//! * **materialized indexes** — additionally counting the internal B-tree
//!   pages derived from the fan-out, so that the small gap between the two
//!   models reproduces the sub-1 % what-if error of the paper.
//!
//! A [`Configuration`] is a set of (typically hypothetical) indexes layered
//! on top of a base [`Catalog`]; the optimizer sees the union of both.

pub mod config;
pub mod index;
pub mod page;
pub mod stats;
pub mod table;
pub mod types;
pub mod whatif;

pub use config::{Configuration, ConfigurationBuilder};
pub use index::{Index, IndexId, IndexKind, IndexSize};
pub use stats::{ColumnStats, Histogram};
pub use table::{Column, Table};
pub use types::{ColumnRef, ColumnType, TableId};

use std::collections::HashMap;

/// The catalog: all base tables and all *materialized* indexes.
///
/// Hypothetical indexes live in a [`Configuration`], not here, mirroring the
/// paper's design where what-if indexes are injected per optimizer call.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<Table>,
    indexes: Vec<Index>,
    by_name: HashMap<String, TableId>,
    /// Materialized indexes grouped by table, in insertion order.
    by_table: HashMap<TableId, Vec<IndexId>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table and returns its id. Panics if the name is taken.
    pub fn add_table(&mut self, mut table: Table) -> TableId {
        assert!(
            !self.by_name.contains_key(table.name()),
            "duplicate table name {:?}",
            table.name()
        );
        let id = TableId(self.tables.len() as u32);
        table.assign_id(id);
        self.by_name.insert(table.name().to_string(), id);
        self.tables.push(table);
        id
    }

    /// Registers a *materialized* index over an existing table.
    pub fn add_index(&mut self, mut index: Index) -> IndexId {
        let id = IndexId(self.indexes.len() as u32);
        index.assign_id(id);
        let table = index.table();
        assert!(
            (table.0 as usize) < self.tables.len(),
            "index references unknown table"
        );
        self.by_table.entry(table).or_default().push(id);
        self.indexes.push(index);
        id
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Looks a table up by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Mutable access to a table (statistics refresh, e.g. a workload
    /// generator wiring foreign-key domains). The id and name must not be
    /// changed through this reference; indexes keep their recorded sizes.
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id.0 as usize]
    }

    /// Looks a table up by name.
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.by_name.get(name).map(|id| self.table(*id))
    }

    /// Id of the table with the given name, if any.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// All tables in id order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Looks a materialized index up by id.
    #[allow(clippy::should_implement_trait)] // "index" is the domain noun here
    pub fn index(&self, id: IndexId) -> &Index {
        &self.indexes[id.0 as usize]
    }

    /// All materialized indexes in id order.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Materialized indexes of one table.
    pub fn table_indexes(&self, table: TableId) -> &[IndexId] {
        self.by_table.get(&table).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total size, in bytes, of every materialized index (used when
    /// reporting advisor budgets).
    pub fn total_index_bytes(&self) -> u64 {
        self.indexes.iter().map(|ix| ix.size().total_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;
    use crate::types::ColumnType;

    fn toy_table(name: &str, rows: u64, cols: usize) -> Table {
        let columns = (0..cols)
            .map(|i| Column::new(format!("c{i}"), ColumnType::Int8).with_ndv((rows / 2).max(1)))
            .collect();
        Table::new(name, rows, columns)
    }

    #[test]
    fn add_and_lookup_tables() {
        let mut cat = Catalog::new();
        let t0 = cat.add_table(toy_table("fact", 1_000_000, 8));
        let t1 = cat.add_table(toy_table("dim", 10_000, 4));
        assert_eq!(cat.table_count(), 2);
        assert_eq!(cat.table(t0).name(), "fact");
        assert_eq!(cat.table_by_name("dim").unwrap().id(), t1);
        assert_eq!(cat.table_id("fact"), Some(t0));
        assert_eq!(cat.table_id("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate table name")]
    fn duplicate_table_name_panics() {
        let mut cat = Catalog::new();
        cat.add_table(toy_table("t", 10, 1));
        cat.add_table(toy_table("t", 10, 1));
    }

    #[test]
    fn indexes_are_grouped_by_table() {
        let mut cat = Catalog::new();
        let t0 = cat.add_table(toy_table("fact", 1_000_000, 8));
        let t1 = cat.add_table(toy_table("dim", 10_000, 4));
        let i0 = cat.add_index(Index::materialized(&cat.table(t0).clone(), vec![0], false));
        let i1 = cat.add_index(Index::materialized(
            &cat.table(t0).clone(),
            vec![1, 2],
            false,
        ));
        let i2 = cat.add_index(Index::materialized(&cat.table(t1).clone(), vec![0], true));
        assert_eq!(cat.table_indexes(t0), &[i0, i1]);
        assert_eq!(cat.table_indexes(t1), &[i2]);
        assert!(cat.total_index_bytes() > 0);
    }
}
