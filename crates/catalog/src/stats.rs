//! Column-level statistics: distinct counts, value ranges, and equi-depth
//! histograms, as produced by PostgreSQL's `ANALYZE`.

/// An equi-depth histogram over a numeric column: `bounds` has `n+1` entries
/// delimiting `n` buckets that each hold the same fraction of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
}

impl Histogram {
    /// Builds a histogram from bucket bounds. Requires at least two
    /// non-decreasing bounds.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(bounds.len() >= 2, "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "histogram bounds must be non-decreasing"
        );
        Self { bounds }
    }

    /// Builds an equi-depth histogram for a uniform distribution over
    /// `[min, max]` with `buckets` buckets — exactly what `ANALYZE` produces
    /// on the paper's uniformly distributed synthetic columns.
    pub fn uniform(min: f64, max: f64, buckets: usize) -> Self {
        assert!(buckets >= 1 && max >= min);
        let step = (max - min) / buckets as f64;
        let bounds = (0..=buckets).map(|i| min + step * i as f64).collect();
        Self::new(bounds)
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Estimated fraction of rows with value `< x` (PostgreSQL's
    /// `ineq_histogram_selectivity` with linear interpolation inside the
    /// containing bucket).
    pub fn fraction_below(&self, x: f64) -> f64 {
        let lo = *self.bounds.first().unwrap();
        let hi = *self.bounds.last().unwrap();
        if x <= lo {
            return 0.0;
        }
        if x >= hi {
            return 1.0;
        }
        let n = self.buckets() as f64;
        // Find the bucket containing x.
        match self
            .bounds
            .windows(2)
            .position(|w| w[0] <= x && x < w[1].max(w[0] + f64::EPSILON))
        {
            Some(b) => {
                let (blo, bhi) = (self.bounds[b], self.bounds[b + 1]);
                let within = if bhi > blo {
                    (x - blo) / (bhi - blo)
                } else {
                    0.5
                };
                (b as f64 + within) / n
            }
            None => 1.0,
        }
    }

    /// Estimated fraction of rows with `lo <= value < hi`.
    pub fn fraction_between(&self, lo: f64, hi: f64) -> f64 {
        (self.fraction_below(hi) - self.fraction_below(lo)).max(0.0)
    }
}

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub n_distinct: f64,
    /// Fraction of NULLs.
    pub null_frac: f64,
    /// Minimum value (numeric columns).
    pub min: f64,
    /// Maximum value (numeric columns).
    pub max: f64,
    /// Physical-vs-logical order correlation in `[-1, 1]`; drives the
    /// random-vs-sequential mix of index-scan heap fetches.
    pub correlation: f64,
    /// Optional equi-depth histogram.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Statistics for a column uniformly distributed over `[min, max]`
    /// (the paper's synthetic columns are "uniformly distributed across all
    /// positive integers", §VI-A).
    pub fn uniform(min: f64, max: f64, n_distinct: f64) -> Self {
        Self {
            n_distinct: n_distinct.max(1.0),
            null_frac: 0.0,
            min,
            max,
            correlation: 0.0,
            histogram: Some(Histogram::uniform(min, max, 100)),
        }
    }

    /// Selectivity of `col = const` (PostgreSQL `eqsel`): `1/n_distinct`
    /// scaled by the non-null fraction.
    pub fn eq_selectivity(&self) -> f64 {
        ((1.0 - self.null_frac) / self.n_distinct).clamp(0.0, 1.0)
    }

    /// Selectivity of `lo <= col < hi` using the histogram when present and
    /// a uniform assumption otherwise.
    pub fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        let frac = match &self.histogram {
            Some(h) => h.fraction_between(lo, hi),
            None => {
                if self.max > self.min {
                    ((hi.min(self.max) - lo.max(self.min)) / (self.max - self.min)).clamp(0.0, 1.0)
                } else {
                    1.0
                }
            }
        };
        (frac * (1.0 - self.null_frac)).clamp(0.0, 1.0)
    }
}

impl Default for ColumnStats {
    fn default() -> Self {
        Self::uniform(0.0, 1_000_000.0, 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_histogram_fractions() {
        let h = Histogram::uniform(0.0, 100.0, 10);
        assert_eq!(h.buckets(), 10);
        assert!((h.fraction_below(50.0) - 0.5).abs() < 1e-9);
        assert!((h.fraction_below(-1.0)).abs() < 1e-12);
        assert!((h.fraction_below(1000.0) - 1.0).abs() < 1e-12);
        assert!((h.fraction_between(25.0, 75.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn interpolation_within_bucket() {
        let h = Histogram::uniform(0.0, 10.0, 2);
        // x = 2.5 sits halfway inside the first of two buckets → 0.25.
        assert!((h.fraction_below(2.5) - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_bounds_panic() {
        Histogram::new(vec![1.0, 0.0]);
    }

    #[test]
    fn eq_selectivity_uses_ndv() {
        let s = ColumnStats::uniform(0.0, 1000.0, 200.0);
        assert!((s.eq_selectivity() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn range_selectivity_clamps() {
        let s = ColumnStats::uniform(0.0, 1000.0, 1000.0);
        assert!((s.range_selectivity(0.0, 10.0) - 0.01).abs() < 1e-9);
        assert_eq!(s.range_selectivity(2000.0, 3000.0), 0.0);
        assert!((s.range_selectivity(-1e9, 1e9) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn null_fraction_scales_selectivity() {
        let mut s = ColumnStats::uniform(0.0, 100.0, 10.0);
        s.null_frac = 0.5;
        assert!((s.eq_selectivity() - 0.05).abs() < 1e-12);
    }
}
