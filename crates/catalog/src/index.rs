//! B-tree index metadata and the two size models (what-if vs materialized).

use crate::page;
use crate::table::Table;
use crate::types::{aligned_tuple_width, ColumnRef, TableId};

/// Identifies a *materialized* index in the catalog. Hypothetical indexes in
/// a [`crate::Configuration`] get ids in a separate space (see
/// [`crate::config`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexId(pub u32);

/// Whether the index physically exists or is simulated for a what-if call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Real index: size model counts leaf *and* internal pages.
    Materialized,
    /// What-if index (paper §V-A): size model counts leaf pages only —
    /// "We ignore the internal pages of the B-Tree index, since they affect
    /// the relative page sizes only on very small indexes."
    Hypothetical,
}

/// Computed size of an index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexSize {
    pub leaf_pages: u64,
    pub internal_pages: u64,
    /// Tree height (number of descents from root to leaf).
    pub height: u32,
}

impl IndexSize {
    pub fn total_pages(&self) -> u64 {
        self.leaf_pages + self.internal_pages + 1 // +1 for the metapage
    }

    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * page::BLOCK_SIZE as u64
    }
}

/// A B-tree index over a prefix-ordered list of key columns.
///
/// Equality with another index is *structural*: same table, same key
/// columns, same uniqueness — used to deduplicate candidate sets.
#[derive(Debug, Clone)]
pub struct Index {
    id: IndexId,
    table: TableId,
    key_columns: Vec<u16>,
    unique: bool,
    kind: IndexKind,
    size: IndexSize,
    /// Correlation between index order and heap order for the leading key,
    /// copied from the leading column's statistics.
    correlation: f64,
    rows: u64,
    name: String,
}

impl Index {
    /// Builds a materialized index over `table` keyed on `key_columns`
    /// (ordinals, significant order).
    pub fn materialized(table: &Table, key_columns: Vec<u16>, unique: bool) -> Self {
        Self::build(table, key_columns, unique, IndexKind::Materialized)
    }

    /// Builds a hypothetical (what-if) index — leaf pages only.
    pub fn hypothetical(table: &Table, key_columns: Vec<u16>, unique: bool) -> Self {
        Self::build(table, key_columns, unique, IndexKind::Hypothetical)
    }

    fn build(table: &Table, key_columns: Vec<u16>, unique: bool, kind: IndexKind) -> Self {
        assert!(
            !key_columns.is_empty(),
            "index needs at least one key column"
        );
        for &k in &key_columns {
            assert!(
                (k as usize) < table.columns().len(),
                "index key column out of range"
            );
        }
        let size = compute_size(table, &key_columns, kind);
        let correlation = table.column(key_columns[0]).stats().correlation;
        let name = format!(
            "{}_{}_{}",
            table.name(),
            key_columns
                .iter()
                .map(|k| table.column(*k).name().to_string())
                .collect::<Vec<_>>()
                .join("_"),
            match kind {
                IndexKind::Materialized => "idx",
                IndexKind::Hypothetical => "whatif",
            }
        );
        Self {
            id: IndexId(u32::MAX),
            table: table.id(),
            key_columns,
            unique,
            kind,
            size,
            correlation,
            rows: table.rows(),
            name,
        }
    }

    pub(crate) fn assign_id(&mut self, id: IndexId) {
        self.id = id;
    }

    /// Rebuilds an index from a field-exact snapshot — the wire codec
    /// round-trips indexes through this. Unlike
    /// [`Self::materialized`]/[`Self::hypothetical`] nothing is derived:
    /// every field (id included) is taken verbatim, so a decoded index is
    /// bit-identical to the encoded one and sizes/correlations computed
    /// on the sender survive the trip.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        id: IndexId,
        table: TableId,
        key_columns: Vec<u16>,
        unique: bool,
        kind: IndexKind,
        size: IndexSize,
        correlation: f64,
        rows: u64,
        name: String,
    ) -> Self {
        assert!(
            !key_columns.is_empty(),
            "index needs at least one key column"
        );
        Self {
            id,
            table,
            key_columns,
            unique,
            kind,
            size,
            correlation,
            rows,
            name,
        }
    }

    pub fn id(&self) -> IndexId {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn table(&self) -> TableId {
        self.table
    }

    /// Key column ordinals in significance order.
    pub fn key_columns(&self) -> &[u16] {
        &self.key_columns
    }

    /// The leading key column — per the paper's definition 4, an index
    /// *covers* an interesting order iff that order is its first column.
    pub fn leading_column(&self) -> u16 {
        self.key_columns[0]
    }

    /// `ColumnRef` of the leading key.
    pub fn leading_column_ref(&self) -> ColumnRef {
        ColumnRef::new(self.table, self.key_columns[0])
    }

    pub fn is_unique(&self) -> bool {
        self.unique
    }

    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    pub fn size(&self) -> IndexSize {
        self.size
    }

    pub fn correlation(&self) -> f64 {
        self.correlation
    }

    /// Number of index tuples (= table rows; we do not model partial
    /// indexes).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// True if every column in `ordinals` is a key column, i.e. an
    /// index-only scan can answer a query touching just those columns.
    pub fn covers_columns(&self, ordinals: &[u16]) -> bool {
        ordinals.iter().all(|o| self.key_columns.contains(o))
    }

    /// Structural identity used for candidate deduplication.
    pub fn structural_key(&self) -> (TableId, &[u16], bool) {
        (self.table, self.key_columns.as_slice(), self.unique)
    }
}

/// Size model shared by both kinds; the only difference is whether internal
/// pages are counted (see [`IndexKind`]).
fn compute_size(table: &Table, key_columns: &[u16], kind: IndexKind) -> IndexSize {
    let types: Vec<_> = key_columns.iter().map(|k| table.column(*k).ty()).collect();
    let tuple = aligned_tuple_width(page::INDEX_TUPLE_HEADER, types.iter());
    let usable_leaf = (page::btree_usable_bytes() as f64 * page::BTREE_LEAF_FILL) as u32;
    let per_leaf = (usable_leaf / (tuple + page::ITEM_ID)).max(1) as u64;
    let leaf_pages = table.rows().div_ceil(per_leaf).max(1);

    // Internal pages: each downlink stores the same key payload + a block
    // pointer; fan-out from the non-leaf fill factor.
    let usable_internal = (page::btree_usable_bytes() as f64 * page::BTREE_NONLEAF_FILL) as u32;
    let fanout = (usable_internal / (tuple + page::ITEM_ID)).max(2) as u64;
    let mut internal_pages = 0u64;
    let mut height = 0u32;
    let mut level = leaf_pages;
    while level > 1 {
        level = level.div_ceil(fanout);
        internal_pages += level;
        height += 1;
    }
    match kind {
        IndexKind::Materialized => IndexSize {
            leaf_pages,
            internal_pages,
            height,
        },
        // What-if sizing per §V-A: internal pages ignored, but the descent
        // height is still known to the cost model.
        IndexKind::Hypothetical => IndexSize {
            leaf_pages,
            internal_pages: 0,
            height,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;
    use crate::types::ColumnType;

    fn table(rows: u64) -> Table {
        let mut t = Table::new(
            "t",
            rows,
            vec![
                Column::new("a", ColumnType::Int8).with_ndv(rows.max(1)),
                Column::new("b", ColumnType::Int4).with_ndv(100),
            ],
        );
        t.assign_id(TableId(0));
        t
    }

    #[test]
    fn whatif_has_no_internal_pages() {
        let t = table(10_000_000);
        let m = Index::materialized(&t, vec![0], false);
        let h = Index::hypothetical(&t, vec![0], false);
        assert_eq!(m.size().leaf_pages, h.size().leaf_pages);
        assert!(m.size().internal_pages > 0);
        assert_eq!(h.size().internal_pages, 0);
        assert_eq!(m.size().height, h.size().height);
    }

    #[test]
    fn internal_pages_are_a_small_fraction() {
        // The paper's what-if error is sub-1 %; the page-count gap between
        // the models must therefore be small for non-tiny indexes.
        let t = table(10_000_000);
        let m = Index::materialized(&t, vec![0], false);
        let frac = m.size().internal_pages as f64 / m.size().leaf_pages as f64;
        assert!(frac < 0.02, "internal fraction {frac} too large");
    }

    #[test]
    fn more_columns_means_more_pages() {
        let t = table(1_000_000);
        let one = Index::hypothetical(&t, vec![0], false);
        let two = Index::hypothetical(&t, vec![0, 1], false);
        assert!(two.size().leaf_pages > one.size().leaf_pages);
    }

    #[test]
    fn height_grows_with_rows() {
        let small = Index::materialized(&table(100), vec![0], false);
        let big = Index::materialized(&table(100_000_000), vec![0], false);
        assert!(big.size().height > small.size().height);
        assert_eq!(small.size().height, 0); // single leaf page, no descent
    }

    #[test]
    fn covering_check() {
        let t = table(1000);
        let ix = Index::materialized(&t, vec![0, 1], false);
        assert!(ix.covers_columns(&[0]));
        assert!(ix.covers_columns(&[1, 0]));
        assert_eq!(ix.leading_column(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_key_column_panics() {
        let t = table(1000);
        Index::materialized(&t, vec![9], false);
    }
}
