//! Configurations: sets of (hypothetical) indexes layered over a catalog.
//!
//! The paper evaluates *configurations* — "a set of indexes" (definition 1)
//! — by injecting what-if indexes into the optimizer. A configuration is
//! *atomic* with respect to a query if it has at most one index per table of
//! that query.

use crate::index::Index;
use crate::types::TableId;
use crate::Catalog;
use std::collections::HashMap;

/// An immutable set of indexes to be seen by one optimizer call, in addition
/// to the catalog's materialized indexes.
#[derive(Debug, Clone, Default)]
pub struct Configuration {
    indexes: Vec<Index>,
    by_table: HashMap<TableId, Vec<usize>>,
}

impl Configuration {
    /// The empty configuration — the optimizer sees only materialized
    /// indexes.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a configuration from indexes (typically hypothetical ones).
    pub fn new(indexes: Vec<Index>) -> Self {
        let mut by_table: HashMap<TableId, Vec<usize>> = HashMap::new();
        for (i, ix) in indexes.iter().enumerate() {
            by_table.entry(ix.table()).or_default().push(i);
        }
        Self { indexes, by_table }
    }

    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Indexes of this configuration on one table.
    pub fn table_indexes(&self, table: TableId) -> impl Iterator<Item = &Index> + '_ {
        self.by_table
            .get(&table)
            .into_iter()
            .flat_map(move |v| v.iter().map(move |i| &self.indexes[*i]))
    }

    /// True if the configuration has at most one index per table in
    /// `tables` — the paper's *atomic* property (definition 1).
    pub fn is_atomic_for(&self, tables: &[TableId]) -> bool {
        tables
            .iter()
            .all(|t| self.by_table.get(t).map_or(0, Vec::len) <= 1)
    }

    /// Total bytes of all configuration indexes (advisor budget accounting).
    pub fn total_bytes(&self) -> u64 {
        self.indexes.iter().map(|ix| ix.size().total_bytes()).sum()
    }

    /// A new configuration extended with one more index.
    pub fn with_index(&self, index: Index) -> Self {
        let mut indexes = self.indexes.clone();
        indexes.push(index);
        Self::new(indexes)
    }
}

/// Incremental builder for configurations of hypothetical indexes.
#[derive(Debug, Default)]
pub struct ConfigurationBuilder {
    indexes: Vec<Index>,
}

impl ConfigurationBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a hypothetical single- or multi-column index on `table`.
    pub fn whatif_index(
        mut self,
        catalog: &Catalog,
        table: TableId,
        key_columns: Vec<u16>,
    ) -> Self {
        self.indexes.push(Index::hypothetical(
            catalog.table(table),
            key_columns,
            false,
        ));
        self
    }

    /// Adds an already-built index.
    pub fn index(mut self, index: Index) -> Self {
        self.indexes.push(index);
        self
    }

    pub fn build(self) -> Configuration {
        Configuration::new(self.indexes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Table};
    use crate::types::ColumnType;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "fact",
            1_000_000,
            vec![
                Column::new("a", ColumnType::Int8).with_ndv(1_000_000),
                Column::new("b", ColumnType::Int4).with_ndv(1_000),
            ],
        ));
        cat.add_table(Table::new(
            "dim",
            10_000,
            vec![Column::new("k", ColumnType::Int8).with_ndv(10_000)],
        ));
        cat
    }

    #[test]
    fn builder_and_lookup() {
        let cat = catalog();
        let t0 = cat.table_id("fact").unwrap();
        let t1 = cat.table_id("dim").unwrap();
        let cfg = ConfigurationBuilder::new()
            .whatif_index(&cat, t0, vec![0])
            .whatif_index(&cat, t0, vec![1, 0])
            .whatif_index(&cat, t1, vec![0])
            .build();
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg.table_indexes(t0).count(), 2);
        assert_eq!(cfg.table_indexes(t1).count(), 1);
        assert!(!cfg.is_atomic_for(&[t0]));
        assert!(cfg.is_atomic_for(&[t1]));
        assert!(cfg.total_bytes() > 0);
    }

    #[test]
    fn empty_is_atomic() {
        let cfg = Configuration::empty();
        assert!(cfg.is_atomic_for(&[TableId(0), TableId(5)]));
        assert_eq!(cfg.total_bytes(), 0);
    }

    #[test]
    fn with_index_is_persistent() {
        let cat = catalog();
        let t0 = cat.table_id("fact").unwrap();
        let base = Configuration::empty();
        let bigger = base.with_index(Index::hypothetical(cat.table(t0), vec![0], false));
        assert_eq!(base.len(), 0);
        assert_eq!(bigger.len(), 1);
    }
}
