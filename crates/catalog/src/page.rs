//! PostgreSQL page-layout constants used by the heap and B-tree size models.

/// Disk block size (PostgreSQL `BLCKSZ`).
pub const BLOCK_SIZE: u32 = 8192;

/// Fixed page header (`PageHeaderData`).
pub const PAGE_HEADER: u32 = 24;

/// Per-tuple line pointer (`ItemIdData`).
pub const ITEM_ID: u32 = 4;

/// Heap tuple header (`HeapTupleHeaderData`, 23 bytes, MAXALIGNed to 24 by
/// [`crate::types::aligned_tuple_width`]).
pub const HEAP_TUPLE_HEADER: u32 = 23;

/// Index tuple header (`IndexTupleData`).
pub const INDEX_TUPLE_HEADER: u32 = 8;

/// B-tree "special space" at the end of every B-tree page
/// (`BTPageOpaqueData`, MAXALIGNed).
pub const BTREE_SPECIAL: u32 = 16;

/// Default B-tree leaf fill factor (PostgreSQL `BTREE_DEFAULT_FILLFACTOR`).
pub const BTREE_LEAF_FILL: f64 = 0.90;

/// Fill factor used for non-leaf B-tree pages
/// (`BTREE_NONLEAF_FILLFACTOR` is 70 in PostgreSQL).
pub const BTREE_NONLEAF_FILL: f64 = 0.70;

/// Usable bytes per heap page.
pub fn heap_usable_bytes() -> u32 {
    BLOCK_SIZE - PAGE_HEADER
}

/// Usable bytes per B-tree page before applying a fill factor.
pub fn btree_usable_bytes() -> u32 {
    BLOCK_SIZE - PAGE_HEADER - BTREE_SPECIAL
}

/// Number of heap pages needed for `rows` tuples of `tuple_width` bytes
/// (width must already include the aligned heap tuple header).
pub fn heap_pages(rows: u64, tuple_width: u32) -> u64 {
    if rows == 0 {
        return 1; // PostgreSQL never reports zero-page relations.
    }
    let per_page = (heap_usable_bytes() / (tuple_width + ITEM_ID)).max(1) as u64;
    rows.div_ceil(per_page)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usable_space_is_positive_and_sane() {
        assert!(heap_usable_bytes() > 8000);
        assert!(btree_usable_bytes() < heap_usable_bytes());
    }

    #[test]
    fn heap_pages_rounds_up() {
        // 36-byte tuples (incl. header) + 4-byte line pointers → 204 per page.
        let per_page = (heap_usable_bytes() / 40) as u64;
        assert_eq!(heap_pages(per_page, 36), 1);
        assert_eq!(heap_pages(per_page + 1, 36), 2);
    }

    #[test]
    fn empty_table_occupies_one_page() {
        assert_eq!(heap_pages(0, 36), 1);
    }
}
