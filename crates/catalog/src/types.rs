//! Fundamental identifiers and scalar column types.

use std::fmt;

/// Identifies a base table inside a [`crate::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A `(table, column ordinal)` pair: the global name of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    pub table: TableId,
    pub column: u16,
}

impl ColumnRef {
    pub fn new(table: TableId, column: u16) -> Self {
        Self { table, column }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.c{}", self.table, self.column)
    }
}

/// Scalar column types with PostgreSQL-compatible storage widths.
///
/// The paper's synthetic workload uses numeric columns only (§VI-A), but the
/// TPC-H statistics (§IV) need dates and strings, so all four are modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 4-byte integer, 4-byte alignment.
    Int4,
    /// 8-byte integer, 8-byte alignment.
    Int8,
    /// 8-byte float, 8-byte alignment.
    Float8,
    /// 4-byte date, 4-byte alignment.
    Date,
    /// Variable-length text with a known *average* payload width
    /// (excluding the 1–4 byte varlena header, which we charge as 4).
    Text { avg_len: u16 },
}

impl ColumnType {
    /// Average on-disk width in bytes, before alignment padding.
    pub fn avg_width(self) -> u32 {
        match self {
            ColumnType::Int4 | ColumnType::Date => 4,
            ColumnType::Int8 | ColumnType::Float8 => 8,
            ColumnType::Text { avg_len } => avg_len as u32 + 4,
        }
    }

    /// Required alignment in bytes (PostgreSQL `typalign`).
    pub fn alignment(self) -> u32 {
        match self {
            ColumnType::Int4 | ColumnType::Date | ColumnType::Text { .. } => 4,
            ColumnType::Int8 | ColumnType::Float8 => 8,
        }
    }

    /// True for types whose values we model as orderable numbers.
    pub fn is_numeric(self) -> bool {
        !matches!(self, ColumnType::Text { .. })
    }
}

/// Rounds `offset` up to the next multiple of `align`.
pub fn align_up(offset: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    (offset + align - 1) & !(align - 1)
}

/// Width of a tuple made of `types`, honoring per-column alignment, starting
/// from a header of `header` bytes and MAXALIGN-ing the final result.
///
/// This mirrors PostgreSQL's `heap_compute_data_size` + MAXALIGN discipline
/// and is what the paper's §V-A uses to size what-if indexes ("the average
/// attribute size ... and the attribute alignments").
pub fn aligned_tuple_width<'a>(
    header: u32,
    types: impl IntoIterator<Item = &'a ColumnType>,
) -> u32 {
    let mut w = header;
    for ty in types {
        w = align_up(w, ty.alignment());
        w += ty.avg_width();
    }
    align_up(w, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_alignment() {
        assert_eq!(ColumnType::Int4.avg_width(), 4);
        assert_eq!(ColumnType::Int8.avg_width(), 8);
        assert_eq!(ColumnType::Text { avg_len: 10 }.avg_width(), 14);
        assert_eq!(ColumnType::Int8.alignment(), 8);
        assert_eq!(ColumnType::Date.alignment(), 4);
    }

    #[test]
    fn align_up_rounds_to_power_of_two() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 4), 12);
    }

    #[test]
    fn tuple_width_honors_padding() {
        // int4 then int8: the int8 must start at offset 8, total 16, already
        // MAXALIGNed.
        let w = aligned_tuple_width(0, [&ColumnType::Int4, &ColumnType::Int8]);
        assert_eq!(w, 16);
        // Two int4s pack into 8 bytes.
        let w = aligned_tuple_width(0, [&ColumnType::Int4, &ColumnType::Int4]);
        assert_eq!(w, 8);
        // Header of 23 (heap tuple header) pads to 24 before an int4.
        let w = aligned_tuple_width(23, [&ColumnType::Int4]);
        assert_eq!(w, 32);
    }

    #[test]
    fn display_formats() {
        let c = ColumnRef::new(TableId(3), 7);
        assert_eq!(c.to_string(), "t3.c7");
    }
}
