//! Blocking TCP client: one connection, one outstanding request at a
//! time (write a frame, read the matching response). This is all the
//! experiments and tests need; a pipelined client would only have to
//! match responses by request id.

use crate::frame::{read_response, write_request, FrameIn};
use crate::messages::{Request, Response};
use crate::WireError;
use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};

/// A synchronous connection to the daemon.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects over TCP. `TCP_NODELAY` is set: frames are whole logical
    /// messages and the request/response lockstep would otherwise pay
    /// Nagle delays on every call.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Self {
            reader: stream,
            writer,
            next_id: 1,
        })
    }

    /// Sends `req` and blocks for its response. The response's request
    /// id must echo the one sent — a mismatch means the stream is out of
    /// sync and is reported as malformed.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        write_request(&mut self.writer, id, req)?;
        std::io::Write::flush(&mut self.writer)?;
        match read_response(&mut self.reader)? {
            FrameIn::Msg { request_id, msg } => {
                if request_id != id {
                    return Err(WireError::Malformed("response id does not echo request id"));
                }
                Ok(msg)
            }
            FrameIn::Eof => Err(WireError::TruncatedFrame),
            FrameIn::Bad { error, .. } => Err(error),
        }
    }
}
