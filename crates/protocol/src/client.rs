//! Blocking TCP client. [`Client::call`] is the one-outstanding-request
//! lockstep most experiments and tests use; [`Client::send`] /
//! [`Client::recv`] / [`Client::call_pipelined`] keep multiple request
//! ids in flight on the same connection, matching responses by the
//! echoed id — how a caller feeds the server's same-tenant admission
//! coalescing without paying a round trip per admission.

use crate::frame::{read_response, write_request, FrameIn};
use crate::messages::{Request, Response};
use crate::WireError;
use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};

/// A synchronous connection to the daemon.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects over TCP. `TCP_NODELAY` is set: frames are whole logical
    /// messages and the request/response lockstep would otherwise pay
    /// Nagle delays on every call.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Self {
            reader: stream,
            writer,
            next_id: 1,
        })
    }

    /// Sends `req` and blocks for its response. The response's request
    /// id must echo the one sent — a mismatch means the stream is out of
    /// sync and is reported as malformed.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        let id = self.send(req)?;
        self.flush()?;
        let (request_id, msg) = self.recv()?;
        if request_id != id {
            return Err(WireError::Malformed("response id does not echo request id"));
        }
        Ok(msg)
    }

    /// Writes one request frame into the connection's buffer *without*
    /// flushing or waiting, returning the request id it was assigned.
    /// Pair with [`Self::flush`] and [`Self::recv`]; any number of ids
    /// may be in flight at once.
    pub fn send(&mut self, req: &Request) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        write_request(&mut self.writer, id, req)?;
        Ok(id)
    }

    /// Flushes buffered request frames to the socket.
    pub fn flush(&mut self) -> Result<(), WireError> {
        std::io::Write::flush(&mut self.writer)?;
        Ok(())
    }

    /// Blocks for the next response frame, whatever request it answers.
    /// The server may interleave responses across tenants (different
    /// shards drain at their own pace), so the caller matches the
    /// returned request id against its in-flight set.
    pub fn recv(&mut self) -> Result<(u64, Response), WireError> {
        match read_response(&mut self.reader)? {
            FrameIn::Msg { request_id, msg } => Ok((request_id, msg)),
            FrameIn::Eof => Err(WireError::TruncatedFrame),
            FrameIn::Bad { error, .. } => Err(error),
        }
    }

    /// Pipelines `reqs`: writes every frame, flushes **once**, then
    /// reads until each request has its response, returned in request
    /// order. This is what lets a server shard see several same-tenant
    /// admissions queued back to back and coalesce them into one
    /// group-committed batch. A response id that matches no outstanding
    /// request (or a duplicate) means the stream is out of sync and is
    /// reported as malformed.
    pub fn call_pipelined(&mut self, reqs: &[Request]) -> Result<Vec<Response>, WireError> {
        let mut ids = Vec::with_capacity(reqs.len());
        for req in reqs {
            ids.push(self.send(req)?);
        }
        self.flush()?;
        let mut slots: Vec<Option<Response>> = (0..reqs.len()).map(|_| None).collect();
        for _ in 0..reqs.len() {
            let (request_id, msg) = self.recv()?;
            let Some(slot) = ids
                .iter()
                .position(|&id| id == request_id)
                .map(|i| &mut slots[i])
            else {
                return Err(WireError::Malformed(
                    "response id matches no pipelined request",
                ));
            };
            if slot.is_some() {
                return Err(WireError::Malformed("duplicate response id in pipeline"));
            }
            *slot = Some(msg);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect())
    }
}
