//! Frame layer: length-prefix delimiting, version checking, and the
//! recoverable/fatal error split connection loops are built on. See the
//! crate docs for the byte layout.

use crate::messages::{Request, Response};
use crate::wire::{put_u64, put_u8, Cursor};
use crate::{WireError, MAX_FRAME_LEN, WIRE_VERSION};
use std::io::{Read, Write};

/// Outcome of reading one frame off a connection.
#[derive(Debug)]
pub enum FrameIn<T> {
    /// A well-formed message.
    Msg { request_id: u64, msg: T },
    /// The stream ended cleanly on a frame boundary.
    Eof,
    /// The length prefix delimited the frame but its payload did not
    /// decode — the connection can continue with the next frame.
    /// `request_id` is present when the header portion (version + id)
    /// parsed before the failure, so the peer can still correlate an
    /// error reply.
    Bad {
        request_id: Option<u64>,
        error: WireError,
    },
}

fn write_frame<W: Write>(w: &mut W, request_id: u64, tag: u8, body: &[u8]) -> std::io::Result<()> {
    let len = 1 + 8 + 1 + body.len();
    debug_assert!(len <= MAX_FRAME_LEN as usize, "outgoing frame over the cap");
    let mut head = Vec::with_capacity(4 + 10);
    head.extend_from_slice(&(len as u32).to_le_bytes());
    put_u8(&mut head, WIRE_VERSION);
    put_u64(&mut head, request_id);
    put_u8(&mut head, tag);
    w.write_all(&head)?;
    w.write_all(body)
}

/// Reads one delimited payload. `Ok(None)` is clean EOF (no bytes of a
/// next frame); a stream ending anywhere *inside* a frame is
/// [`WireError::TruncatedFrame`], and a length prefix over the cap is
/// [`WireError::Oversized`] — both fatal, nothing was allocated.
fn read_payload<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (zero bytes) from a torn header.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(WireError::TruncatedFrame),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::TruncatedFrame
        } else {
            WireError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

/// Decodes a payload's `[version | request id | tag | body]`, mapping
/// every body failure to [`FrameIn::Bad`] (framing survived).
fn decode_payload<T>(
    payload: &[u8],
    decode: impl FnOnce(u8, &mut Cursor<'_>) -> Result<T, WireError>,
) -> FrameIn<T> {
    let mut c = Cursor::new(payload);
    let version = match c.u8() {
        Ok(v) => v,
        Err(e) => {
            return FrameIn::Bad {
                request_id: None,
                error: e,
            }
        }
    };
    if version != WIRE_VERSION {
        return FrameIn::Bad {
            request_id: None,
            error: WireError::UnsupportedVersion(version),
        };
    }
    let request_id = match c.u64() {
        Ok(id) => id,
        Err(e) => {
            return FrameIn::Bad {
                request_id: None,
                error: e,
            }
        }
    };
    let result = c.u8().and_then(|tag| decode(tag, &mut c)).and_then(|msg| {
        if c.exhausted() {
            Ok(msg)
        } else {
            Err(WireError::Malformed("trailing bytes after message body"))
        }
    });
    match result {
        Ok(msg) => FrameIn::Msg { request_id, msg },
        Err(error) => FrameIn::Bad {
            request_id: Some(request_id),
            error,
        },
    }
}

/// Writes one request frame.
pub fn write_request<W: Write>(w: &mut W, request_id: u64, req: &Request) -> std::io::Result<()> {
    let mut body = Vec::new();
    req.encode_body(&mut body);
    write_frame(w, request_id, req.tag(), &body)
}

/// Writes one response frame.
pub fn write_response<W: Write>(
    w: &mut W,
    request_id: u64,
    resp: &Response,
) -> std::io::Result<()> {
    let mut body = Vec::new();
    resp.encode_body(&mut body);
    write_frame(w, request_id, resp.tag(), &body)
}

/// Reads one request frame (the daemon side). `Err` is fatal for the
/// connection; [`FrameIn::Bad`] is answerable with a typed error reply.
pub fn read_request<R: Read>(r: &mut R) -> Result<FrameIn<Request>, WireError> {
    match read_payload(r)? {
        None => Ok(FrameIn::Eof),
        Some(payload) => Ok(decode_payload(&payload, Request::decode_body)),
    }
}

/// Reads one response frame (the client side).
pub fn read_response<R: Read>(r: &mut R) -> Result<FrameIn<Response>, WireError> {
    match read_payload(r)? {
        None => Ok(FrameIn::Eof),
        Some(payload) => Ok(decode_payload(&payload, Response::decode_body)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ErrorCode;

    #[test]
    fn request_frames_roundtrip() {
        let req = Request::ReweightAdmission {
            tenant: 3,
            admission: 17,
            weight: 2.5,
        };
        let mut buf = Vec::new();
        write_request(&mut buf, 42, &req).unwrap();
        let mut r = buf.as_slice();
        match read_request(&mut r).unwrap() {
            FrameIn::Msg { request_id, msg } => {
                assert_eq!(request_id, 42);
                assert_eq!(msg, req);
            }
            other => panic!("expected a message, got {other:?}"),
        }
        assert!(matches!(read_request(&mut r).unwrap(), FrameIn::Eof));
    }

    #[test]
    fn persistence_messages_roundtrip() {
        let reqs = [
            Request::SnapshotNow { tenant: 9 },
            Request::TenantEpoch { tenant: 9 },
        ];
        let mut buf = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            write_request(&mut buf, i as u64, req).unwrap();
            assert_eq!(req.tenant(), Some(9));
        }
        let mut r = buf.as_slice();
        for (i, req) in reqs.iter().enumerate() {
            match read_request(&mut r).unwrap() {
                FrameIn::Msg { request_id, msg } => {
                    assert_eq!(request_id, i as u64);
                    assert_eq!(&msg, req);
                }
                other => panic!("expected a message, got {other:?}"),
            }
        }

        let resps = [
            Response::SnapshotTaken { log_seq: 41 },
            Response::Epoch {
                durable: true,
                log_seq: 41,
                snapshot_seq: Some(30),
                appends: 41,
                fsyncs: 7,
                batches: 5,
                max_batch_records: 16,
            },
            Response::Epoch {
                durable: false,
                log_seq: 0,
                snapshot_seq: None,
                appends: 0,
                fsyncs: 0,
                batches: 0,
                max_batch_records: 0,
            },
            Response::Error {
                code: ErrorCode::PersistenceDisabled,
                detail: "volatile tenant".into(),
            },
            Response::Error {
                code: ErrorCode::Persistence,
                detail: "journal write failed".into(),
            },
        ];
        let mut buf = Vec::new();
        for (i, resp) in resps.iter().enumerate() {
            write_response(&mut buf, i as u64, resp).unwrap();
        }
        let mut r = buf.as_slice();
        for resp in &resps {
            match read_response(&mut r).unwrap() {
                FrameIn::Msg { msg, .. } => assert_eq!(&msg, resp),
                other => panic!("expected a message, got {other:?}"),
            }
        }
        assert!(matches!(read_response(&mut r).unwrap(), FrameIn::Eof));
    }

    #[test]
    fn torn_header_and_torn_payload_are_fatal() {
        let mut buf = Vec::new();
        write_request(&mut buf, 7, &Request::Shutdown).unwrap();
        // Cut inside the length prefix.
        assert!(matches!(
            read_request(&mut &buf[..2]),
            Err(WireError::TruncatedFrame)
        ));
        // Cut inside the payload.
        assert!(matches!(
            read_request(&mut &buf[..buf.len() - 1]),
            Err(WireError::TruncatedFrame)
        ));
    }

    #[test]
    fn oversized_prefix_is_fatal_and_allocation_free() {
        let buf = (MAX_FRAME_LEN + 1).to_le_bytes();
        assert!(matches!(
            read_request(&mut buf.as_slice()),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn bad_payload_is_recoverable_and_keeps_the_request_id() {
        // A well-delimited frame with an unknown tag.
        let mut payload = Vec::new();
        put_u8(&mut payload, WIRE_VERSION);
        put_u64(&mut payload, 99);
        put_u8(&mut payload, 250);
        let mut buf = (payload.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&payload);
        // A healthy frame follows it on the same stream.
        write_request(&mut buf, 100, &Request::Shutdown).unwrap();
        let mut r = buf.as_slice();
        match read_request(&mut r).unwrap() {
            FrameIn::Bad { request_id, error } => {
                assert_eq!(request_id, Some(99));
                assert!(matches!(error, WireError::UnknownTag(250)));
                assert!(error.frame_recoverable());
            }
            other => panic!("expected Bad, got {other:?}"),
        }
        // The connection survives: the next frame still parses.
        assert!(matches!(
            read_request(&mut r).unwrap(),
            FrameIn::Msg {
                request_id: 100,
                msg: Request::Shutdown
            }
        ));
    }

    #[test]
    fn wrong_version_is_recoverable() {
        let mut payload = Vec::new();
        put_u8(&mut payload, 9);
        put_u64(&mut payload, 1);
        put_u8(&mut payload, 9);
        let mut buf = (payload.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&payload);
        match read_request(&mut buf.as_slice()).unwrap() {
            FrameIn::Bad { error, .. } => {
                assert!(matches!(error, WireError::UnsupportedVersion(9)));
                assert!(error.frame_recoverable());
            }
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_is_malformed() {
        let mut payload = Vec::new();
        put_u8(&mut payload, WIRE_VERSION);
        put_u64(&mut payload, 5);
        put_u8(&mut payload, 9); // Shutdown has an empty body...
        put_u8(&mut payload, 0xCC); // ...so this byte is garbage.
        let mut buf = (payload.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&payload);
        match read_request(&mut buf.as_slice()).unwrap() {
            FrameIn::Bad { request_id, error } => {
                assert_eq!(request_id, Some(5));
                assert!(matches!(error, WireError::Malformed(_)));
            }
            other => panic!("expected Bad, got {other:?}"),
        }
    }
}
