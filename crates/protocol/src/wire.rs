//! Primitive byte-level encode/decode: the bounds-checked cursor every
//! message body is read through, and the little-endian writers. See the
//! crate docs for the encoding table.

use crate::WireError;

/// Bounds-checked read cursor over one frame's payload. Every accessor
/// returns [`WireError::Truncated`] instead of slicing out of range, so
/// decoding arbitrary bytes can never panic.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole payload was consumed — frame decoding
    /// requires this, so trailing garbage is caught, not ignored.
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Bit-exact f64 (IEEE 754 pattern; NaN payloads survive).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool byte not 0 or 1")),
        }
    }

    /// `u32` element count, validated against the bytes actually left in
    /// the frame: each element of the claimed vector occupies at least
    /// `min_elem` bytes, so a count the remaining payload cannot back is
    /// rejected *before* any allocation (a 4-byte prefix must not be
    /// able to request a multi-gigabyte `Vec`).
    pub fn len(&mut self, min_elem: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.checked_mul(min_elem.max(1))
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(WireError::Malformed("element count exceeds payload"));
        }
        Ok(n)
    }

    pub fn string(&mut self) -> Result<String, WireError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("invalid UTF-8"))
    }

    /// One-byte presence tag, then `read` when present.
    pub fn option<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, WireError>,
    ) -> Result<Option<T>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(read(self)?)),
            _ => Err(WireError::Malformed("option tag not 0 or 1")),
        }
    }

    /// Length-validated vector of `min_elem`-byte-minimum elements.
    pub fn vec<T>(
        &mut self,
        min_elem: usize,
        mut read: impl FnMut(&mut Self) -> Result<T, WireError>,
    ) -> Result<Vec<T>, WireError> {
        let n = self.len(min_elem)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(read(self)?);
        }
        Ok(out)
    }
}

// --- Writers. Encoding is infallible (Vec<u8> sink). ---

pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

pub fn put_len(out: &mut Vec<u8>, n: usize) {
    debug_assert!(n <= u32::MAX as usize, "collection too large for the wire");
    put_u32(out, n as u32);
}

pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

pub fn put_option<T>(out: &mut Vec<u8>, v: &Option<T>, write: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        None => out.push(0),
        Some(inner) => {
            out.push(1);
            write(out, inner);
        }
    }
}

pub fn put_vec<T>(out: &mut Vec<u8>, items: &[T], mut write: impl FnMut(&mut Vec<u8>, &T)) {
    put_len(out, items.len());
    for item in items {
        write(out, item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.0);
        put_bool(&mut buf, true);
        put_string(&mut buf, "héllo");
        put_option(&mut buf, &Some(3u16), |o, v| put_u16(o, *v));
        put_option::<u16>(&mut buf, &None, |o, v| put_u16(o, *v));
        put_vec(&mut buf, &[1u32, 2, 3], |o, v| put_u32(o, *v));

        let mut c = Cursor::new(&buf);
        assert_eq!(c.u8().unwrap(), 7);
        assert_eq!(c.u16().unwrap(), 0xBEEF);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(c.bool().unwrap());
        assert_eq!(c.string().unwrap(), "héllo");
        assert_eq!(c.option(|c| c.u16()).unwrap(), Some(3));
        assert_eq!(c.option(|c| c.u16()).unwrap(), None);
        assert_eq!(c.vec(4, |c| c.u32()).unwrap(), vec![1, 2, 3]);
        assert!(c.exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut c = Cursor::new(&[1, 2]);
        assert!(matches!(c.u32(), Err(WireError::Truncated)));
        // The failed read consumed nothing usable; u16 still works.
        assert_eq!(c.u16().unwrap(), 0x0201);
    }

    #[test]
    fn hostile_lengths_are_rejected_before_allocation() {
        // Claims 2^32-1 elements with 4 bytes of backing.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        put_u32(&mut buf, 0);
        let mut c = Cursor::new(&buf);
        assert!(matches!(
            c.vec(8, |c| c.f64()),
            Err(WireError::Malformed(_))
        ));
        // Same guard on strings.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1000);
        buf.extend_from_slice(b"short");
        assert!(matches!(
            Cursor::new(&buf).string(),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn bad_tags_are_malformed() {
        assert!(matches!(
            Cursor::new(&[2]).bool(),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            Cursor::new(&[9]).option(|c| c.u8()),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            Cursor::new(&[0xFF, 0xFE]).string(),
            Err(WireError::Truncated) | Err(WireError::Malformed(_))
        ));
    }
}
