//! The message set: requests a client sends the daemon, responses it
//! gets back, and the wire mirrors of the domain payloads they carry.
//!
//! Wire structs are deliberately *flat mirrors* built from primitives
//! only — `pinum-protocol` depends on nothing, so it cannot name domain
//! types. The lossless conversions (`pinum_catalog::Index` ↔
//! [`WireIndex`], …) live in `pinum_server::convert`, keeping this crate
//! a pure byte-layout contract. Every field is encoded in declaration
//! order; see the crate docs for the primitive encodings.

use crate::wire::*;
use crate::WireError;

/// One candidate index, field-exact (sizes and correlation travel as
/// computed on the sender — nothing is re-derived on decode).
#[derive(Debug, Clone, PartialEq)]
pub struct WireIndex {
    pub id: u32,
    pub table: u32,
    pub key_columns: Vec<u16>,
    pub unique: bool,
    /// 0 = materialized, 1 = hypothetical.
    pub kind: u8,
    pub leaf_pages: u64,
    pub internal_pages: u64,
    pub height: u32,
    pub correlation: f64,
    pub rows: u64,
    pub name: String,
}

impl WireIndex {
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.id);
        put_u32(out, self.table);
        put_vec(out, &self.key_columns, |o, v| put_u16(o, *v));
        put_bool(out, self.unique);
        put_u8(out, self.kind);
        put_u64(out, self.leaf_pages);
        put_u64(out, self.internal_pages);
        put_u32(out, self.height);
        put_f64(out, self.correlation);
        put_u64(out, self.rows);
        put_string(out, &self.name);
    }

    pub fn decode(c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            id: c.u32()?,
            table: c.u32()?,
            key_columns: c.vec(2, |c| c.u16())?,
            unique: c.bool()?,
            kind: match c.u8()? {
                k @ (0 | 1) => k,
                _ => return Err(WireError::Malformed("index kind not 0 or 1")),
            },
            leaf_pages: c.u64()?,
            internal_pages: c.u64()?,
            height: c.u32()?,
            correlation: c.f64()?,
            rows: c.u64()?,
            name: c.string()?,
        })
    }
}

/// Cost-model parameters (mirror of `pinum_cost::CostParams`).
#[derive(Debug, Clone, PartialEq)]
pub struct WireCostParams {
    pub seq_page_cost: f64,
    pub random_page_cost: f64,
    pub cpu_tuple_cost: f64,
    pub cpu_index_tuple_cost: f64,
    pub cpu_operator_cost: f64,
    pub effective_cache_pages: f64,
    pub work_mem_kb: u64,
}

impl WireCostParams {
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, self.seq_page_cost);
        put_f64(out, self.random_page_cost);
        put_f64(out, self.cpu_tuple_cost);
        put_f64(out, self.cpu_index_tuple_cost);
        put_f64(out, self.cpu_operator_cost);
        put_f64(out, self.effective_cache_pages);
        put_u64(out, self.work_mem_kb);
    }

    pub fn decode(c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            seq_page_cost: c.f64()?,
            random_page_cost: c.f64()?,
            cpu_tuple_cost: c.f64()?,
            cpu_index_tuple_cost: c.f64()?,
            cpu_operator_cost: c.f64()?,
            effective_cache_pages: c.f64()?,
            work_mem_kb: c.u64()?,
        })
    }
}

/// Probe-pricing inputs of one access arm (mirror of
/// `pinum_cost::scan::IndexScanInput`).
#[derive(Debug, Clone, PartialEq)]
pub struct WireProbe {
    pub index_leaf_pages: u64,
    pub index_height: u32,
    pub index_rows: f64,
    pub heap_pages: u64,
    pub heap_rows: f64,
    pub index_selectivity: f64,
    pub correlation: f64,
    pub filter_ops: u32,
    pub index_only: bool,
    pub loop_count: f64,
}

impl WireProbe {
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.index_leaf_pages);
        put_u32(out, self.index_height);
        put_f64(out, self.index_rows);
        put_u64(out, self.heap_pages);
        put_f64(out, self.heap_rows);
        put_f64(out, self.index_selectivity);
        put_f64(out, self.correlation);
        put_u32(out, self.filter_ops);
        put_bool(out, self.index_only);
        put_f64(out, self.loop_count);
    }

    pub fn decode(c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            index_leaf_pages: c.u64()?,
            index_height: c.u32()?,
            index_rows: c.f64()?,
            heap_pages: c.u64()?,
            heap_rows: c.f64()?,
            index_selectivity: c.f64()?,
            correlation: c.f64()?,
            filter_ops: c.u32()?,
            index_only: c.bool()?,
            loop_count: c.f64()?,
        })
    }
}

/// One priced access path (mirror of
/// `pinum_core::access_costs::CandidateAccess`).
#[derive(Debug, Clone, PartialEq)]
pub struct WireAccess {
    pub candidate: Option<u32>,
    pub order: Option<u16>,
    pub cost: f64,
    pub probe: Option<WireProbe>,
}

impl WireAccess {
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_option(out, &self.candidate, |o, v| put_u32(o, *v));
        put_option(out, &self.order, |o, v| put_u16(o, *v));
        put_f64(out, self.cost);
        put_option(out, &self.probe, |o, p| p.encode(o));
    }

    pub fn decode(c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            candidate: c.option(|c| c.u32())?,
            order: c.option(|c| c.u16())?,
            cost: c.f64()?,
            probe: c.option(WireProbe::decode)?,
        })
    }
}

/// A query's full access-cost catalog (mirror of
/// `pinum_core::access_costs::AccessCostCatalog`): per relation, the
/// priced entries exactly as collected (order preserved — no re-sort on
/// either side).
#[derive(Debug, Clone, PartialEq)]
pub struct WireAccessCatalog {
    pub per_rel: Vec<Vec<WireAccess>>,
    pub params: WireCostParams,
}

impl WireAccessCatalog {
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_vec(out, &self.per_rel, |o, rel| {
            put_vec(o, rel, |o, a| a.encode(o));
        });
        self.params.encode(out);
    }

    pub fn decode(c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            per_rel: c.vec(4, |c| c.vec(1, WireAccess::decode))?,
            params: WireCostParams::decode(c)?,
        })
    }
}

/// One cached plan (mirror of `pinum_core::cache::CachedPlan`).
#[derive(Debug, Clone, PartialEq)]
pub struct WirePlan {
    pub ioc: u64,
    pub internal: f64,
    pub coefs: Vec<f64>,
    pub probe_coefs: Vec<f64>,
    pub uses_nlj: bool,
    pub rows: f64,
    pub description: String,
}

impl WirePlan {
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.ioc);
        put_f64(out, self.internal);
        put_vec(out, &self.coefs, |o, v| put_f64(o, *v));
        put_vec(out, &self.probe_coefs, |o, v| put_f64(o, *v));
        put_bool(out, self.uses_nlj);
        put_f64(out, self.rows);
        put_string(out, &self.description);
    }

    pub fn decode(c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            ioc: c.u64()?,
            internal: c.f64()?,
            coefs: c.vec(8, |c| c.f64())?,
            probe_coefs: c.vec(8, |c| c.f64())?,
            uses_nlj: c.bool()?,
            rows: c.f64()?,
            description: c.string()?,
        })
    }
}

/// A query's plan cache (mirror of `pinum_core::cache::PlanCache`):
/// interesting orders as per-relation sorted column lists, plans in
/// insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePlanCache {
    pub query_name: String,
    pub n_rels: u32,
    pub orders: Vec<Vec<u16>>,
    pub plans: Vec<WirePlan>,
}

impl WirePlanCache {
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_string(out, &self.query_name);
        put_u32(out, self.n_rels);
        put_vec(out, &self.orders, |o, rel| {
            put_vec(o, rel, |o, v| put_u16(o, *v));
        });
        put_vec(out, &self.plans, |o, p| p.encode(o));
    }

    pub fn decode(c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            query_name: c.string()?,
            n_rels: c.u32()?,
            orders: c.vec(4, |c| c.vec(2, |c| c.u16()))?,
            plans: c.vec(8, WirePlan::decode)?,
        })
    }
}

/// A template key for drift attribution (mirror of
/// `pinum_query::TemplateKey`): the table plus bit-exact filter
/// identities `(column, op tag, lo bits, hi bits)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTemplate {
    pub table: u32,
    pub filters: Vec<(u16, u8, u64, u64)>,
}

impl WireTemplate {
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.table);
        put_vec(out, &self.filters, |o, &(col, tag, lo, hi)| {
            put_u16(o, col);
            put_u8(o, tag);
            put_u64(o, lo);
            put_u64(o, hi);
        });
    }

    pub fn decode(c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            table: c.u32()?,
            filters: c.vec(19, |c| Ok((c.u16()?, c.u8()?, c.u64()?, c.u64()?)))?,
        })
    }
}

/// Advisor options for a new tenant (mirror of
/// `pinum_online::OnlineAdvisorOptions` plus the strategy tag).
#[derive(Debug, Clone, PartialEq)]
pub struct WireOptions {
    pub window_capacity: u64,
    pub epoch_length: u64,
    pub drift_threshold: f64,
    pub decay: f64,
    /// 0 = lazy greedy, 1 = eager greedy, 2 = swap hill-climb (the
    /// server validates the tag; the annealing strategy is not exposed
    /// over the wire).
    pub strategy: u8,
    pub budget_bytes: u64,
    pub benefit_per_byte: bool,
    pub warm_start: bool,
    pub scoped_readvise: bool,
    pub attribution_threshold: f64,
}

impl WireOptions {
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.window_capacity);
        put_u64(out, self.epoch_length);
        put_f64(out, self.drift_threshold);
        put_f64(out, self.decay);
        put_u8(out, self.strategy);
        put_u64(out, self.budget_bytes);
        put_bool(out, self.benefit_per_byte);
        put_bool(out, self.warm_start);
        put_bool(out, self.scoped_readvise);
        put_f64(out, self.attribution_threshold);
    }

    pub fn decode(c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            window_capacity: c.u64()?,
            epoch_length: c.u64()?,
            drift_threshold: c.f64()?,
            decay: c.f64()?,
            strategy: c.u8()?,
            budget_bytes: c.u64()?,
            benefit_per_byte: c.bool()?,
            warm_start: c.bool()?,
            scoped_readvise: c.bool()?,
            attribution_threshold: c.f64()?,
        })
    }
}

/// One admission's payload: the per-query one-optimizer-call artifacts
/// plus weight and attribution templates — exactly one
/// `pinum_online::AdmissionSpec` for `OnlineAdvisor::apply`.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAdmission {
    pub cache: WirePlanCache,
    pub access: WireAccessCatalog,
    pub weight: f64,
    pub templates: Vec<WireTemplate>,
}

impl WireAdmission {
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.cache.encode(out);
        self.access.encode(out);
        put_f64(out, self.weight);
        put_vec(out, &self.templates, |o, t| t.encode(o));
    }

    pub fn decode(c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            cache: WirePlanCache::decode(c)?,
            access: WireAccessCatalog::decode(c)?,
            weight: c.f64()?,
            templates: c.vec(8, WireTemplate::decode)?,
        })
    }
}

/// One re-advising round's outcome (mirror of
/// `pinum_online::ReadviseReport`; wall clock travels as seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct WireReadviseReport {
    /// 0 = epoch, 1 = drift, 2 = forced.
    pub trigger: u8,
    pub wall_seconds: f64,
    pub cost_before: f64,
    pub cost_after: f64,
    pub picks: u64,
    pub evaluations: u64,
    pub queries_repriced: u64,
    pub full_repricings: u64,
    pub scoped: bool,
    pub scope_candidates: u64,
}

impl WireReadviseReport {
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u8(out, self.trigger);
        put_f64(out, self.wall_seconds);
        put_f64(out, self.cost_before);
        put_f64(out, self.cost_after);
        put_u64(out, self.picks);
        put_u64(out, self.evaluations);
        put_u64(out, self.queries_repriced);
        put_u64(out, self.full_repricings);
        put_bool(out, self.scoped);
        put_u64(out, self.scope_candidates);
    }

    pub fn decode(c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            trigger: match c.u8()? {
                t @ 0..=2 => t,
                _ => return Err(WireError::Malformed("readvise trigger not 0..=2")),
            },
            wall_seconds: c.f64()?,
            cost_before: c.f64()?,
            cost_after: c.f64()?,
            picks: c.u64()?,
            evaluations: c.u64()?,
            queries_repriced: c.u64()?,
            full_repricings: c.u64()?,
            scoped: c.bool()?,
            scope_candidates: c.u64()?,
        })
    }
}

/// One admission's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAdmitResult {
    pub ordinal: u64,
    pub qid: u64,
    pub evicted: Option<u64>,
    pub readvise: Option<WireReadviseReport>,
}

impl WireAdmitResult {
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.ordinal);
        put_u64(out, self.qid);
        put_option(out, &self.evicted, |o, v| put_u64(o, *v));
        put_option(out, &self.readvise, |o, r| r.encode(o));
    }

    pub fn decode(c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            ordinal: c.u64()?,
            qid: c.u64()?,
            evicted: c.option(|c| c.u64())?,
            readvise: c.option(WireReadviseReport::decode)?,
        })
    }
}

/// A tenant's daemon counters (mirror of `pinum_online::OnlineStats`;
/// wall clocks travel as seconds).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireStats {
    pub admits: u64,
    pub evictions: u64,
    pub reweights: u64,
    pub reweight_misses: u64,
    pub readvises: u64,
    pub epoch_readvises: u64,
    pub drift_readvises: u64,
    pub forced_readvises: u64,
    pub scoped_readvises: u64,
    pub full_rebuilds: u64,
    pub full_repricings: u64,
    pub compactions: u64,
    pub admit_arms_total: u64,
    pub admit_arms_max: u64,
    pub model_admit_wall_seconds: f64,
    pub readvise_wall_seconds: f64,
    pub last_readvise_wall_seconds: f64,
}

impl WireStats {
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.admits);
        put_u64(out, self.evictions);
        put_u64(out, self.reweights);
        put_u64(out, self.reweight_misses);
        put_u64(out, self.readvises);
        put_u64(out, self.epoch_readvises);
        put_u64(out, self.drift_readvises);
        put_u64(out, self.forced_readvises);
        put_u64(out, self.scoped_readvises);
        put_u64(out, self.full_rebuilds);
        put_u64(out, self.full_repricings);
        put_u64(out, self.compactions);
        put_u64(out, self.admit_arms_total);
        put_u64(out, self.admit_arms_max);
        put_f64(out, self.model_admit_wall_seconds);
        put_f64(out, self.readvise_wall_seconds);
        put_f64(out, self.last_readvise_wall_seconds);
    }

    pub fn decode(c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            admits: c.u64()?,
            evictions: c.u64()?,
            reweights: c.u64()?,
            reweight_misses: c.u64()?,
            readvises: c.u64()?,
            epoch_readvises: c.u64()?,
            drift_readvises: c.u64()?,
            forced_readvises: c.u64()?,
            scoped_readvises: c.u64()?,
            full_rebuilds: c.u64()?,
            full_repricings: c.u64()?,
            compactions: c.u64()?,
            admit_arms_total: c.u64()?,
            admit_arms_max: c.u64()?,
            model_admit_wall_seconds: c.f64()?,
            readvise_wall_seconds: c.f64()?,
            last_readvise_wall_seconds: c.f64()?,
        })
    }
}

/// A tenant's view of the global re-advise budget.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireBudgetStats {
    /// Re-advise permits this tenant was granted.
    pub grants: u64,
    /// Grants that had to wait for a permit.
    pub waits: u64,
    /// Longest wait, measured in grant events that passed while queued
    /// (the deterministic unit the aging bound is stated in).
    pub max_wait_events: u64,
    /// Sum of per-grant waits in grant events.
    pub total_wait_events: u64,
}

impl WireBudgetStats {
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.grants);
        put_u64(out, self.waits);
        put_u64(out, self.max_wait_events);
        put_u64(out, self.total_wait_events);
    }

    pub fn decode(c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            grants: c.u64()?,
            waits: c.u64()?,
            max_wait_events: c.u64()?,
            total_wait_events: c.u64()?,
        })
    }
}

/// Typed error replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// `CreateTenant` for an id that already exists.
    TenantExists,
    /// Any tenant-scoped request for an id never created.
    UnknownTenant,
    /// The frame was delimited but its payload did not decode; the
    /// connection survives.
    Malformed,
    /// The daemon is shutting down and no longer serves tenant requests.
    ShuttingDown,
    /// A durability-only request (`SnapshotNow`) hit a tenant the daemon
    /// runs without a snapshot directory.
    PersistenceDisabled,
    /// A journal or snapshot write failed; the in-memory tenant is still
    /// consistent but the mutation was refused.
    Persistence,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::TenantExists => 1,
            ErrorCode::UnknownTenant => 2,
            ErrorCode::Malformed => 3,
            ErrorCode::ShuttingDown => 4,
            ErrorCode::PersistenceDisabled => 5,
            ErrorCode::Persistence => 6,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            1 => ErrorCode::TenantExists,
            2 => ErrorCode::UnknownTenant,
            3 => ErrorCode::Malformed,
            4 => ErrorCode::ShuttingDown,
            5 => ErrorCode::PersistenceDisabled,
            6 => ErrorCode::Persistence,
            _ => return Err(WireError::Malformed("unknown error code")),
        })
    }
}

/// Client → daemon messages. Tenant-scoped requests carry the tenant id
/// first; the daemon routes them to the tenant's shard.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Registers a tenant: its candidate pool (field-exact index
    /// snapshots) and advisor options.
    CreateTenant {
        tenant: u64,
        pool: Vec<WireIndex>,
        options: WireOptions,
    },
    /// Admits one query into the tenant's sliding window.
    AdmitQuery {
        tenant: u64,
        admission: WireAdmission,
    },
    /// Admits a batch in order, answered by one response.
    AdmitBatch {
        tenant: u64,
        admissions: Vec<WireAdmission>,
    },
    /// Reweights the admission with the given ordinal.
    ReweightAdmission {
        tenant: u64,
        admission: u64,
        weight: f64,
    },
    /// Evicts the admission with the given ordinal ahead of the window.
    EvictQuery { tenant: u64, admission: u64 },
    /// Forces a re-advising round now.
    ForceReadvise { tenant: u64 },
    /// Reads the tenant's current selection.
    GetSelection { tenant: u64 },
    /// Reads the tenant's daemon counters and budget stats.
    GetStats { tenant: u64 },
    /// Asks the daemon to stop accepting and drain.
    Shutdown,
    /// Cuts a snapshot of the tenant's state right now (durable daemons
    /// only — volatile ones answer `PersistenceDisabled`).
    SnapshotNow { tenant: u64 },
    /// Reads the tenant's persistence epoch: last journaled mutation and
    /// last snapshot cut, for deciding when a restart would be cheap.
    TenantEpoch { tenant: u64 },
}

impl Request {
    pub(crate) fn tag(&self) -> u8 {
        match self {
            Request::CreateTenant { .. } => 1,
            Request::AdmitQuery { .. } => 2,
            Request::AdmitBatch { .. } => 3,
            Request::ReweightAdmission { .. } => 4,
            Request::EvictQuery { .. } => 5,
            Request::ForceReadvise { .. } => 6,
            Request::GetSelection { .. } => 7,
            Request::GetStats { .. } => 8,
            Request::Shutdown => 9,
            Request::SnapshotNow { .. } => 10,
            Request::TenantEpoch { .. } => 11,
        }
    }

    /// The tenant a request targets (`None` for daemon-wide requests).
    pub fn tenant(&self) -> Option<u64> {
        match *self {
            Request::CreateTenant { tenant, .. }
            | Request::AdmitQuery { tenant, .. }
            | Request::AdmitBatch { tenant, .. }
            | Request::ReweightAdmission { tenant, .. }
            | Request::EvictQuery { tenant, .. }
            | Request::ForceReadvise { tenant }
            | Request::GetSelection { tenant }
            | Request::GetStats { tenant }
            | Request::SnapshotNow { tenant }
            | Request::TenantEpoch { tenant } => Some(tenant),
            Request::Shutdown => None,
        }
    }

    pub(crate) fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Request::CreateTenant {
                tenant,
                pool,
                options,
            } => {
                put_u64(out, *tenant);
                put_vec(out, pool, |o, ix| ix.encode(o));
                options.encode(out);
            }
            Request::AdmitQuery { tenant, admission } => {
                put_u64(out, *tenant);
                admission.encode(out);
            }
            Request::AdmitBatch { tenant, admissions } => {
                put_u64(out, *tenant);
                put_vec(out, admissions, |o, a| a.encode(o));
            }
            Request::ReweightAdmission {
                tenant,
                admission,
                weight,
            } => {
                put_u64(out, *tenant);
                put_u64(out, *admission);
                put_f64(out, *weight);
            }
            Request::EvictQuery { tenant, admission } => {
                put_u64(out, *tenant);
                put_u64(out, *admission);
            }
            Request::ForceReadvise { tenant }
            | Request::GetSelection { tenant }
            | Request::GetStats { tenant }
            | Request::SnapshotNow { tenant }
            | Request::TenantEpoch { tenant } => put_u64(out, *tenant),
            Request::Shutdown => {}
        }
    }

    pub(crate) fn decode_body(tag: u8, c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(match tag {
            1 => Request::CreateTenant {
                tenant: c.u64()?,
                pool: c.vec(32, WireIndex::decode)?,
                options: WireOptions::decode(c)?,
            },
            2 => Request::AdmitQuery {
                tenant: c.u64()?,
                admission: WireAdmission::decode(c)?,
            },
            3 => Request::AdmitBatch {
                tenant: c.u64()?,
                admissions: c.vec(32, WireAdmission::decode)?,
            },
            4 => Request::ReweightAdmission {
                tenant: c.u64()?,
                admission: c.u64()?,
                weight: c.f64()?,
            },
            5 => Request::EvictQuery {
                tenant: c.u64()?,
                admission: c.u64()?,
            },
            6 => Request::ForceReadvise { tenant: c.u64()? },
            7 => Request::GetSelection { tenant: c.u64()? },
            8 => Request::GetStats { tenant: c.u64()? },
            9 => Request::Shutdown,
            10 => Request::SnapshotNow { tenant: c.u64()? },
            11 => Request::TenantEpoch { tenant: c.u64()? },
            other => return Err(WireError::UnknownTag(other)),
        })
    }
}

/// Daemon → client messages, one per request (same `request id`).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    TenantCreated {
        tenant: u64,
    },
    /// One result per admission of the batch (a single `AdmitQuery`
    /// answers with a one-element vector).
    Admitted {
        results: Vec<WireAdmitResult>,
    },
    Reweighted {
        /// False when the target had already left the window (no-op).
        applied: bool,
        readvise: Option<WireReadviseReport>,
    },
    Evicted {
        applied: bool,
    },
    Readvised {
        report: WireReadviseReport,
    },
    Selection {
        /// Selected candidate-pool ids, ascending.
        ids: Vec<u64>,
        /// Total size of the selected indexes in bytes.
        total_bytes: u64,
        /// Exact priced cost of the selection over the live window.
        cost: f64,
    },
    Stats {
        stats: WireStats,
        budget: WireBudgetStats,
    },
    ShuttingDown,
    Error {
        code: ErrorCode,
        detail: String,
    },
    /// Answer to `SnapshotNow`: the log position the snapshot covers.
    SnapshotTaken {
        log_seq: u64,
    },
    /// Answer to `TenantEpoch`.
    Epoch {
        /// Whether the tenant journals its mutations at all.
        durable: bool,
        /// Sequence number of the last journaled mutation (0 when
        /// volatile).
        log_seq: u64,
        /// Log position of the newest snapshot, if one was ever cut.
        snapshot_seq: Option<u64>,
        /// Write-ahead-log durability counters since this process
        /// created or reopened the log (all 0 when volatile): records
        /// appended, fsyncs issued, group-commit batches written, and
        /// the largest record count folded into one fsync. `fsyncs <
        /// appends` is the observable group-commit win.
        appends: u64,
        fsyncs: u64,
        batches: u64,
        max_batch_records: u64,
    },
}

impl Response {
    pub(crate) fn tag(&self) -> u8 {
        match self {
            Response::TenantCreated { .. } => 1,
            Response::Admitted { .. } => 2,
            Response::Reweighted { .. } => 3,
            Response::Evicted { .. } => 4,
            Response::Readvised { .. } => 5,
            Response::Selection { .. } => 6,
            Response::Stats { .. } => 7,
            Response::ShuttingDown => 8,
            Response::Error { .. } => 9,
            Response::SnapshotTaken { .. } => 10,
            Response::Epoch { .. } => 11,
        }
    }

    pub(crate) fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Response::TenantCreated { tenant } => put_u64(out, *tenant),
            Response::Admitted { results } => put_vec(out, results, |o, r| r.encode(o)),
            Response::Reweighted { applied, readvise } => {
                put_bool(out, *applied);
                put_option(out, readvise, |o, r| r.encode(o));
            }
            Response::Evicted { applied } => put_bool(out, *applied),
            Response::Readvised { report } => report.encode(out),
            Response::Selection {
                ids,
                total_bytes,
                cost,
            } => {
                put_vec(out, ids, |o, v| put_u64(o, *v));
                put_u64(out, *total_bytes);
                put_f64(out, *cost);
            }
            Response::Stats { stats, budget } => {
                stats.encode(out);
                budget.encode(out);
            }
            Response::ShuttingDown => {}
            Response::Error { code, detail } => {
                put_u8(out, code.tag());
                put_string(out, detail);
            }
            Response::SnapshotTaken { log_seq } => put_u64(out, *log_seq),
            Response::Epoch {
                durable,
                log_seq,
                snapshot_seq,
                appends,
                fsyncs,
                batches,
                max_batch_records,
            } => {
                put_bool(out, *durable);
                put_u64(out, *log_seq);
                put_option(out, snapshot_seq, |o, s| put_u64(o, *s));
                put_u64(out, *appends);
                put_u64(out, *fsyncs);
                put_u64(out, *batches);
                put_u64(out, *max_batch_records);
            }
        }
    }

    pub(crate) fn decode_body(tag: u8, c: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(match tag {
            1 => Response::TenantCreated { tenant: c.u64()? },
            2 => Response::Admitted {
                results: c.vec(18, WireAdmitResult::decode)?,
            },
            3 => Response::Reweighted {
                applied: c.bool()?,
                readvise: c.option(WireReadviseReport::decode)?,
            },
            4 => Response::Evicted { applied: c.bool()? },
            5 => Response::Readvised {
                report: WireReadviseReport::decode(c)?,
            },
            6 => Response::Selection {
                ids: c.vec(8, |c| c.u64())?,
                total_bytes: c.u64()?,
                cost: c.f64()?,
            },
            7 => Response::Stats {
                stats: WireStats::decode(c)?,
                budget: WireBudgetStats::decode(c)?,
            },
            8 => Response::ShuttingDown,
            9 => Response::Error {
                code: ErrorCode::from_tag(c.u8()?)?,
                detail: c.string()?,
            },
            10 => Response::SnapshotTaken { log_seq: c.u64()? },
            11 => Response::Epoch {
                durable: c.bool()?,
                log_seq: c.u64()?,
                snapshot_seq: c.option(|c| c.u64())?,
                appends: c.u64()?,
                fsyncs: c.u64()?,
                batches: c.u64()?,
                max_batch_records: c.u64()?,
            },
            other => return Err(WireError::UnknownTag(other)),
        })
    }
}
