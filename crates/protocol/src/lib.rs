//! # pinum-protocol — the advisor daemon's wire format
//!
//! Hand-rolled, dependency-light (pure `std`) serialization for the
//! multi-tenant advisor daemon (`pinum-server`), plus a blocking TCP
//! [`Client`]. No serde: the build environment is offline and the repo's
//! shim philosophy is to keep external surface area at zero, so the
//! codec is written out explicitly — which also makes the byte layout a
//! documented, deterministic contract instead of a derive artifact.
//!
//! ## Frame format
//!
//! Every message travels in one length-prefixed frame:
//!
//! ```text
//! +----------------+---------------------------------------------+
//! | u32 LE: len    | payload (len bytes)                         |
//! +----------------+---------------------------------------------+
//! payload = [ u8 version | u64 LE request id | u8 tag | body ]
//! ```
//!
//! * `len` counts the payload only (not itself) and is capped at
//!   [`MAX_FRAME_LEN`]; a larger prefix is rejected *before* any
//!   allocation, so a hostile length cannot balloon memory.
//! * `version` is [`WIRE_VERSION`]. A reader rejects other versions with
//!   [`WireError::UnsupportedVersion`] but — because framing is intact —
//!   can keep reading subsequent frames.
//! * `request id` is an opaque caller-chosen correlation id echoed in
//!   the response frame.
//! * `tag` selects the [`Request`]/[`Response`] variant; `body` is that
//!   variant's fields in declaration order.
//!
//! ## Primitive encodings
//!
//! All multi-byte integers are little-endian. `f64` travels as the IEEE
//! 754 bit pattern (`to_bits`/`from_bits`) so costs round-trip
//! bit-identically — the determinism contract of the whole repo extends
//! over the wire. `bool` is one byte, `0` or `1` (any other value is
//! [`WireError::Malformed`]). `String` is a `u32` byte length followed
//! by UTF-8 (validated). `Option<T>` is a one-byte tag (`0`/`1`)
//! followed by `T` when present. `Vec<T>` is a `u32` element count
//! followed by the elements; the count is validated against the bytes
//! actually remaining in the frame before anything is allocated.
//!
//! ## Malformed input
//!
//! Decoding never panics: every read is bounds-checked and every
//! error is a typed [`WireError`]. Errors split into two classes —
//! *frame-recoverable* (the length prefix delimited the frame, but the
//! payload didn't decode: unknown tag, bad bool, truncated body, …),
//! after which the connection can continue with the next frame, and
//! *fatal* (socket error, EOF mid-frame, oversized length prefix),
//! after which the stream has no trustworthy resynchronization point.
//! [`frame::read_request`]/[`frame::read_response`] express the split in
//! their return type.

pub mod client;
pub mod frame;
pub mod messages;
pub mod wire;

pub use client::Client;
pub use frame::{read_request, read_response, write_request, write_response, FrameIn};
pub use messages::{
    ErrorCode, Request, Response, WireAccess, WireAccessCatalog, WireAdmission, WireAdmitResult,
    WireBudgetStats, WireCostParams, WireIndex, WireOptions, WirePlan, WirePlanCache, WireProbe,
    WireReadviseReport, WireStats, WireTemplate,
};

/// Protocol version byte carried by every frame.
pub const WIRE_VERSION: u8 = 1;

/// Hard cap on a frame's payload length. Large enough for any real
/// admission batch (a full plan-cache + access-catalog snapshot is tens
/// of kilobytes), small enough that a corrupt or hostile length prefix
/// cannot balloon memory: nothing is allocated before the prefix passes
/// this check.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Typed decode/transport error. Never panics out of the codec.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/stream error.
    Io(std::io::Error),
    /// The stream ended inside a frame (header or payload).
    TruncatedFrame,
    /// The payload ended before the message body did.
    Truncated,
    /// Length prefix above [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// Version byte this reader does not speak.
    UnsupportedVersion(u8),
    /// Unknown message tag for this side of the protocol.
    UnknownTag(u8),
    /// Structurally invalid body (bad bool/option tag, invalid UTF-8, an
    /// element count larger than the bytes backing it, …).
    Malformed(&'static str),
}

impl WireError {
    /// Whether the framing survived the error: the frame was delimited
    /// by its length prefix, so the reader can continue with the next
    /// frame on the same connection.
    pub fn frame_recoverable(&self) -> bool {
        match self {
            WireError::Io(_) | WireError::TruncatedFrame | WireError::Oversized(_) => false,
            WireError::Truncated
            | WireError::UnsupportedVersion(_)
            | WireError::UnknownTag(_)
            | WireError::Malformed(_) => true,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::TruncatedFrame => write!(f, "stream ended inside a frame"),
            WireError::Truncated => write!(f, "payload ended before the message body"),
            WireError::Oversized(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN} cap")
            }
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            WireError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}
