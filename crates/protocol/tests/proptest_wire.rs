//! Property tests for the wire format: seeded arbitrary messages must
//! round-trip bit-exactly through the frame layer, and no byte-level
//! corruption — truncation, single-byte mutation, hostile length
//! prefixes — may ever panic the decoder. The generators below cover
//! every `Request`/`Response` variant and every wire struct field,
//! including empty vectors, empty and multibyte strings, `None` options,
//! zero/negative/infinite floats.

use pinum_protocol::{
    read_request, read_response, write_request, write_response, ErrorCode, FrameIn, Request,
    Response, WireAccess, WireAccessCatalog, WireAdmission, WireAdmitResult, WireBudgetStats,
    WireCostParams, WireIndex, WireOptions, WirePlan, WirePlanCache, WireProbe, WireReadviseReport,
    WireStats, WireTemplate, MAX_FRAME_LEN,
};
use proptest::prelude::*;
use proptest::TestRng;

// --- Seeded builders: one deterministic arbitrary value per wire type. ---

fn b(r: &mut TestRng) -> bool {
    r.next_u64() & 1 == 1
}

/// Floats as they travel in practice: zeros, negatives, huge magnitudes,
/// and infinity (a NaN would be preserved bit-exactly too, but `PartialEq`
/// could no longer witness it, so the generator stays NaN-free).
fn f(r: &mut TestRng) -> f64 {
    match r.next_u64() % 8 {
        0 => 0.0,
        1 => -0.0,
        2 => f64::INFINITY,
        3 => f64::MIN_POSITIVE,
        _ => (r.unit_f64() - 0.5) * 1e12,
    }
}

/// Strings with empty, ASCII, and multibyte shapes (exercises the UTF-8
/// length-prefix path).
fn s(r: &mut TestRng) -> String {
    const ALPHABET: [char; 8] = ['a', 'Z', '0', '_', 'λ', '→', '¢', '𐍈'];
    let n = (r.next_u64() % 12) as usize;
    (0..n)
        .map(|_| ALPHABET[(r.next_u64() % ALPHABET.len() as u64) as usize])
        .collect()
}

fn index(r: &mut TestRng) -> WireIndex {
    WireIndex {
        id: r.next_u64() as u32,
        table: r.next_u64() as u32,
        key_columns: (0..r.next_u64() % 5).map(|_| r.next_u64() as u16).collect(),
        unique: b(r),
        kind: (r.next_u64() % 2) as u8,
        leaf_pages: r.next_u64(),
        internal_pages: r.next_u64(),
        height: r.next_u64() as u32,
        correlation: f(r),
        rows: r.next_u64(),
        name: s(r),
    }
}

fn probe(r: &mut TestRng) -> WireProbe {
    WireProbe {
        index_leaf_pages: r.next_u64(),
        index_height: r.next_u64() as u32,
        index_rows: f(r),
        heap_pages: r.next_u64(),
        heap_rows: f(r),
        index_selectivity: f(r),
        correlation: f(r),
        filter_ops: r.next_u64() as u32,
        index_only: b(r),
        loop_count: f(r),
    }
}

fn access(r: &mut TestRng) -> WireAccess {
    WireAccess {
        candidate: b(r).then(|| r.next_u64() as u32),
        order: b(r).then(|| r.next_u64() as u16),
        cost: f(r),
        probe: b(r).then(|| probe(r)),
    }
}

fn catalog(r: &mut TestRng) -> WireAccessCatalog {
    WireAccessCatalog {
        per_rel: (0..r.next_u64() % 4)
            .map(|_| (0..r.next_u64() % 4).map(|_| access(r)).collect())
            .collect(),
        params: WireCostParams {
            seq_page_cost: f(r),
            random_page_cost: f(r),
            cpu_tuple_cost: f(r),
            cpu_index_tuple_cost: f(r),
            cpu_operator_cost: f(r),
            effective_cache_pages: f(r),
            work_mem_kb: r.next_u64(),
        },
    }
}

fn plan(r: &mut TestRng) -> WirePlan {
    WirePlan {
        ioc: r.next_u64(),
        internal: f(r),
        coefs: (0..r.next_u64() % 5).map(|_| f(r)).collect(),
        probe_coefs: (0..r.next_u64() % 5).map(|_| f(r)).collect(),
        uses_nlj: b(r),
        rows: f(r),
        description: s(r),
    }
}

fn cache(r: &mut TestRng) -> WirePlanCache {
    WirePlanCache {
        query_name: s(r),
        n_rels: r.next_u64() as u32,
        orders: (0..r.next_u64() % 4)
            .map(|_| (0..r.next_u64() % 4).map(|_| r.next_u64() as u16).collect())
            .collect(),
        plans: (0..r.next_u64() % 3).map(|_| plan(r)).collect(),
    }
}

fn template(r: &mut TestRng) -> WireTemplate {
    WireTemplate {
        table: r.next_u64() as u32,
        filters: (0..r.next_u64() % 4)
            .map(|_| {
                (
                    r.next_u64() as u16,
                    r.next_u64() as u8,
                    r.next_u64(),
                    r.next_u64(),
                )
            })
            .collect(),
    }
}

fn options(r: &mut TestRng) -> WireOptions {
    WireOptions {
        window_capacity: r.next_u64(),
        epoch_length: r.next_u64(),
        drift_threshold: f(r),
        decay: f(r),
        strategy: (r.next_u64() % 3) as u8,
        budget_bytes: r.next_u64(),
        benefit_per_byte: b(r),
        warm_start: b(r),
        scoped_readvise: b(r),
        attribution_threshold: f(r),
    }
}

fn admission(r: &mut TestRng) -> WireAdmission {
    WireAdmission {
        cache: cache(r),
        access: catalog(r),
        weight: f(r),
        templates: (0..r.next_u64() % 3).map(|_| template(r)).collect(),
    }
}

fn report(r: &mut TestRng) -> WireReadviseReport {
    WireReadviseReport {
        trigger: (r.next_u64() % 3) as u8,
        wall_seconds: f(r),
        cost_before: f(r),
        cost_after: f(r),
        picks: r.next_u64(),
        evaluations: r.next_u64(),
        queries_repriced: r.next_u64(),
        full_repricings: r.next_u64(),
        scoped: b(r),
        scope_candidates: r.next_u64(),
    }
}

fn request(r: &mut TestRng) -> Request {
    match r.next_u64() % 11 {
        0 => Request::CreateTenant {
            tenant: r.next_u64(),
            pool: (0..r.next_u64() % 3).map(|_| index(r)).collect(),
            options: options(r),
        },
        1 => Request::AdmitQuery {
            tenant: r.next_u64(),
            admission: admission(r),
        },
        2 => Request::AdmitBatch {
            tenant: r.next_u64(),
            admissions: (0..r.next_u64() % 3).map(|_| admission(r)).collect(),
        },
        3 => Request::ReweightAdmission {
            tenant: r.next_u64(),
            admission: r.next_u64(),
            weight: f(r),
        },
        4 => Request::EvictQuery {
            tenant: r.next_u64(),
            admission: r.next_u64(),
        },
        5 => Request::ForceReadvise {
            tenant: r.next_u64(),
        },
        6 => Request::GetSelection {
            tenant: r.next_u64(),
        },
        7 => Request::GetStats {
            tenant: r.next_u64(),
        },
        8 => Request::SnapshotNow {
            tenant: r.next_u64(),
        },
        9 => Request::TenantEpoch {
            tenant: r.next_u64(),
        },
        _ => Request::Shutdown,
    }
}

fn response(r: &mut TestRng) -> Response {
    match r.next_u64() % 11 {
        0 => Response::TenantCreated {
            tenant: r.next_u64(),
        },
        1 => Response::Admitted {
            results: (0..r.next_u64() % 3)
                .map(|_| WireAdmitResult {
                    ordinal: r.next_u64(),
                    qid: r.next_u64(),
                    evicted: b(r).then(|| r.next_u64()),
                    readvise: b(r).then(|| report(r)),
                })
                .collect(),
        },
        2 => Response::Reweighted {
            applied: b(r),
            readvise: b(r).then(|| report(r)),
        },
        3 => Response::Evicted { applied: b(r) },
        4 => Response::Readvised { report: report(r) },
        5 => Response::Selection {
            ids: (0..r.next_u64() % 6).map(|_| r.next_u64()).collect(),
            total_bytes: r.next_u64(),
            cost: f(r),
        },
        6 => Response::Stats {
            stats: WireStats {
                admits: r.next_u64(),
                evictions: r.next_u64(),
                reweights: r.next_u64(),
                reweight_misses: r.next_u64(),
                readvises: r.next_u64(),
                epoch_readvises: r.next_u64(),
                drift_readvises: r.next_u64(),
                forced_readvises: r.next_u64(),
                scoped_readvises: r.next_u64(),
                full_rebuilds: r.next_u64(),
                full_repricings: r.next_u64(),
                compactions: r.next_u64(),
                admit_arms_total: r.next_u64(),
                admit_arms_max: r.next_u64(),
                model_admit_wall_seconds: f(r),
                readvise_wall_seconds: f(r),
                last_readvise_wall_seconds: f(r),
            },
            budget: WireBudgetStats {
                grants: r.next_u64(),
                waits: r.next_u64(),
                max_wait_events: r.next_u64(),
                total_wait_events: r.next_u64(),
            },
        },
        7 => Response::ShuttingDown,
        8 => Response::SnapshotTaken {
            log_seq: r.next_u64(),
        },
        9 => Response::Epoch {
            durable: b(r),
            log_seq: r.next_u64(),
            snapshot_seq: b(r).then(|| r.next_u64()),
            appends: r.next_u64(),
            fsyncs: r.next_u64(),
            batches: r.next_u64(),
            max_batch_records: r.next_u64(),
        },
        _ => Response::Error {
            code: [
                ErrorCode::TenantExists,
                ErrorCode::UnknownTenant,
                ErrorCode::Malformed,
                ErrorCode::ShuttingDown,
                ErrorCode::PersistenceDisabled,
                ErrorCode::Persistence,
            ][(r.next_u64() % 6) as usize],
            detail: s(r),
        },
    }
}

/// Reads request frames until clean EOF or a fatal error, asserting the
/// drain terminates (every outcome consumes at least the length prefix).
fn drain(buf: &[u8]) {
    let mut slice = buf;
    for _ in 0..buf.len() + 2 {
        match read_request(&mut slice) {
            Ok(FrameIn::Eof) | Err(_) => return,
            Ok(FrameIn::Msg { .. }) | Ok(FrameIn::Bad { .. }) => {}
        }
    }
    panic!("frame drain did not terminate on {} bytes", buf.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request variant survives encode → frame → decode bit-exactly,
    /// and back-to-back frames on one stream stay delimited.
    #[test]
    fn any_request_roundtrips_bit_exactly(seed in 0u64..=u64::MAX) {
        let mut r = TestRng::new(seed);
        let msgs: Vec<(u64, Request)> =
            (0..1 + seed % 3).map(|_| (r.next_u64(), request(&mut r))).collect();
        let mut buf = Vec::new();
        for (id, req) in &msgs {
            write_request(&mut buf, *id, req).unwrap();
        }
        let mut slice = buf.as_slice();
        for (id, req) in &msgs {
            match read_request(&mut slice).unwrap() {
                FrameIn::Msg { request_id, msg } => {
                    prop_assert_eq!(request_id, *id);
                    prop_assert_eq!(&msg, req);
                }
                other => panic!("expected a message, got {other:?}"),
            }
        }
        prop_assert!(matches!(read_request(&mut slice).unwrap(), FrameIn::Eof));
    }

    /// Every response variant survives the same trip.
    #[test]
    fn any_response_roundtrips_bit_exactly(seed in 0u64..=u64::MAX) {
        let mut r = TestRng::new(seed);
        let id = r.next_u64();
        let resp = response(&mut r);
        let mut buf = Vec::new();
        write_response(&mut buf, id, &resp).unwrap();
        let mut slice = buf.as_slice();
        match read_response(&mut slice).unwrap() {
            FrameIn::Msg { request_id, msg } => {
                prop_assert_eq!(request_id, id);
                prop_assert_eq!(msg, resp);
            }
            other => panic!("expected a message, got {other:?}"),
        }
        prop_assert!(matches!(read_response(&mut slice).unwrap(), FrameIn::Eof));
    }

    /// A single flipped byte anywhere in a frame stream — length prefix,
    /// header, or body — never panics the reader; it yields some lawful
    /// sequence of Msg/Bad frames ending in EOF or a fatal error.
    #[test]
    fn single_byte_corruption_never_panics(
        seed in 0u64..=u64::MAX,
        pos_pick in 0u64..=u64::MAX,
        xor in 1u8..=255,
    ) {
        let mut r = TestRng::new(seed);
        let mut buf = Vec::new();
        write_request(&mut buf, r.next_u64(), &request(&mut r)).unwrap();
        write_request(&mut buf, r.next_u64(), &request(&mut r)).unwrap();
        let pos = (pos_pick % buf.len() as u64) as usize;
        buf[pos] ^= xor;
        drain(&buf);
    }

    /// Every truncation point of a valid stream terminates cleanly —
    /// mid-prefix and mid-payload cuts are fatal, boundary cuts are EOF.
    #[test]
    fn every_truncation_point_terminates(seed in 0u64..=u64::MAX, cut_pick in 0u64..=u64::MAX) {
        let mut r = TestRng::new(seed);
        let mut buf = Vec::new();
        write_request(&mut buf, r.next_u64(), &request(&mut r)).unwrap();
        write_request(&mut buf, r.next_u64(), &request(&mut r)).unwrap();
        let cut = (cut_pick % (buf.len() as u64 + 1)) as usize;
        drain(&buf[..cut]);
    }

    /// `AdmitBatch` — the message client pipelining and server
    /// coalescing ride on — gets a dedicated sweep: round-trip at
    /// several batch sizes (including empty), then a truncation and a
    /// flipped byte. A cut frame must decode to the complete batch or
    /// fail cleanly — never to a silently shortened admission list.
    #[test]
    fn admit_batch_roundtrips_and_survives_corruption(
        seed in 0u64..=u64::MAX,
        size_pick in 0u64..5,
        cut_pick in 0u64..=u64::MAX,
        xor in 1u8..=255,
    ) {
        let mut r = TestRng::new(seed);
        let req = Request::AdmitBatch {
            tenant: r.next_u64(),
            admissions: (0..size_pick).map(|_| admission(&mut r)).collect(),
        };
        let id = r.next_u64();
        let mut buf = Vec::new();
        write_request(&mut buf, id, &req).unwrap();
        match read_request(&mut buf.as_slice()).unwrap() {
            FrameIn::Msg { request_id, msg } => {
                prop_assert_eq!(request_id, id);
                prop_assert_eq!(&msg, &req);
            }
            other => panic!("expected a message, got {other:?}"),
        }
        let cut = (cut_pick % (buf.len() as u64 + 1)) as usize;
        match read_request(&mut &buf[..cut]) {
            Ok(FrameIn::Msg { msg, .. }) => {
                prop_assert_eq!(&msg, &req, "only the complete frame may decode");
            }
            Ok(FrameIn::Eof) => prop_assert_eq!(cut, 0),
            Ok(FrameIn::Bad { .. }) | Err(_) => {}
        }
        let pos = (cut_pick >> 17) as usize % buf.len();
        buf[pos] ^= xor;
        drain(&buf);
    }

    /// Hostile length prefixes: anything over the cap is rejected before
    /// allocating; anything under it either delimits garbage (recoverable
    /// Bad) or tears at EOF (fatal) — never a panic, never an OOM.
    #[test]
    fn hostile_length_prefixes_never_allocate_or_panic(
        len in 0u32..=u32::MAX,
        fill in 0u64..=u64::MAX,
    ) {
        let mut buf = len.to_le_bytes().to_vec();
        // A little payload, usually shorter than the prefix claims.
        let mut r = TestRng::new(fill);
        for _ in 0..fill % 32 {
            buf.push(r.next_u64() as u8);
        }
        if len > MAX_FRAME_LEN {
            prop_assert!(matches!(
                read_request(&mut buf.as_slice()),
                Err(pinum_protocol::WireError::Oversized(l)) if l == len
            ));
        } else {
            drain(&buf);
        }
    }
}
