//! # pinum-server: the multi-tenant advisor daemon
//!
//! Owns N independent [`pinum_online::OnlineAdvisor`] sessions ("tenants")
//! behind the [`pinum_protocol`] wire format:
//!
//! - [`daemon`] — sharded tenant ownership, the blocking TCP accept loop,
//!   and request dispatch. Each tenant is pinned to one shard worker, so
//!   its mutations are applied in strict arrival order and every reply is
//!   bit-identical to a single-tenant in-process run of the same stream.
//! - [`budget`] — the global re-advise budget: at most K re-advises run
//!   concurrently, with an aging queue so no tenant starves.
//! - [`convert`] (re-exported from `pinum_persist`) — validated wire ↔
//!   domain conversions; malformed payloads become typed error replies,
//!   never daemon panics.
//!
//! The determinism contract is the whole point: moving a tenant behind
//! the daemon changes *where* and *when* its advisor runs, never *what*
//! it computes. `exp_multi_tenant` gates this end to end over loopback
//! TCP.

pub mod budget;
pub mod daemon;

pub use budget::{BudgetPermit, ReadviseBudget, TenantBudgetStats};
pub use daemon::{shard_of, Server, ServerConfig, ServerHandle};
pub use pinum_persist::convert::{self, ConvertError};
