//! The daemon: sharded tenant ownership, blocking accept loop, and the
//! request dispatch that ties the wire format to
//! [`pinum_online::OnlineAdvisor`] through a write-ahead
//! [`PersistentAdvisor`] per tenant. With `--snapshot-dir` set, each
//! shard journals its tenants' mutations before applying them, cuts a
//! snapshot every K admissions (the shard thread is the tenant's only
//! mutator, so no locking), and recovers every tenant it owns at
//! start-up — bit-identical to a daemon that never stopped.
//!
//! ## Threading model
//!
//! - **Shard workers** (fixed count, chosen at start-up): each owns the
//!   `TenantState` map for the tenants that hash to it and applies their
//!   mutations strictly in mailbox order. A tenant lives on exactly one
//!   shard, so its advisor sees the same serial mutation order it would
//!   see in a single-threaded embedding — which is what makes every
//!   per-tenant result bit-identical to the in-process baseline.
//! - **Connection readers** (one per accepted socket): decode frames and
//!   forward them to the owning shard's mailbox together with a reply
//!   sender. Structurally broken payloads that left the framing intact
//!   are answered inline with a `Malformed` error and the connection
//!   keeps going; torn framing closes the connection.
//! - **Connection writers** (one per socket): drain the reply channel so
//!   a slow client never blocks a shard worker.
//!
//! Re-advises — the expensive operation — are gated by the process-wide
//! [`ReadviseBudget`]: the shard worker
//! computes the trigger with the deferred admission APIs, *then* blocks
//! on a permit, then executes. Deferral never changes what the re-advise
//! computes, only when it runs.

use crate::budget::ReadviseBudget;
use crate::convert::{self, ConvertError};
use pinum_core::access_costs::AccessCostCatalog;
use pinum_core::cache::PlanCache;
use pinum_core::ProbePool;
use pinum_online::{Admission, AdmissionSpec};
use pinum_persist::{GroupCommitPolicy, PersistError, PersistentAdvisor};
use pinum_protocol::{
    read_request, write_response, ErrorCode, FrameIn, Request, Response, WireAdmission,
    WireAdmitResult, WireBudgetStats,
};
use pinum_query::TemplateKey;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Start-up knobs. The CLI binary maps its flags onto this 1:1.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Shard worker threads. Tenants are assigned by tenant-id hash.
    pub shards: usize,
    /// Re-advises allowed to run concurrently across all tenants.
    pub budget: usize,
    /// Root directory for tenant journals and snapshots. `None` (the
    /// default) runs every tenant fully in memory; when set, each tenant
    /// lives in `tenant-<id>/` under it, existing tenants are recovered
    /// at start-up, and every mutation is journaled write-ahead.
    pub snapshot_dir: Option<PathBuf>,
    /// Admissions between automatic snapshots on a durable tenant's
    /// shard thread (0 = only on `SnapshotNow`).
    pub snapshot_every: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            budget: 2,
            snapshot_dir: None,
            snapshot_every: 32,
        }
    }
}

/// The on-disk directory of one tenant under the daemon's snapshot root.
pub fn tenant_dir(root: &std::path::Path, tenant: u64) -> PathBuf {
    root.join(format!("tenant-{tenant}"))
}

/// Which shard owns a tenant (Fibonacci-hash of the id, so dense tenant
/// ids still spread across shards).
pub fn shard_of(tenant: u64, shards: usize) -> usize {
    ((tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % shards.max(1)
}

struct TenantState {
    advisor: PersistentAdvisor,
}

enum ShardMsg {
    Request {
        request_id: u64,
        req: Box<Request>,
        reply: mpsc::Sender<(u64, Response)>,
    },
    Stop,
}

/// Connection registry: one peer clone (for forced close at shutdown)
/// plus the reader thread's handle, per accepted connection.
type ConnRegistry = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// The daemon. [`Server::start`] binds, spawns the workers, and returns
/// a [`ServerHandle`] for shutdown; the listener itself runs on its own
/// thread.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port — read it back via
    /// [`ServerHandle::addr`]) and starts the shard workers and accept
    /// loop. Also sizes the process-global [`ProbePool`] for this many
    /// dispatching shards, so concurrent re-advises do not oversubscribe
    /// the cores (`PINUM_THREADS` still overrides; see the pool docs).
    pub fn start(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let shards = config.shards.max(1);
        ProbePool::init_global_for_dispatchers(shards);
        let budget = Arc::new(ReadviseBudget::new(config.budget));

        let mut shard_txs = Vec::with_capacity(shards);
        let mut shard_threads = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::channel::<ShardMsg>();
            let budget = budget.clone();
            let persistence = Persistence {
                root: config.snapshot_dir.clone(),
                snapshot_every: config.snapshot_every,
                shard,
                shards,
            };
            shard_txs.push(tx);
            shard_threads.push(
                std::thread::Builder::new()
                    .name(format!("pinum-shard-{shard}"))
                    .spawn(move || shard_worker(rx, &budget, &persistence))
                    .expect("spawn shard worker"),
            );
        }

        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: ConnRegistry = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let shutdown = shutdown.clone();
            let conns = conns.clone();
            let shard_txs = shard_txs.clone();
            std::thread::Builder::new()
                .name("pinum-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let Ok(peer) = stream.try_clone() else {
                            continue;
                        };
                        let shard_txs = shard_txs.clone();
                        let shutdown = shutdown.clone();
                        let reader = std::thread::Builder::new()
                            .name("pinum-conn".into())
                            .spawn(move || serve_connection(stream, &shard_txs, &shutdown))
                            .expect("spawn connection reader");
                        conns.lock().expect("conns lock").push((peer, reader));
                    }
                })
                .expect("spawn accept loop")
        };

        Ok(ServerHandle {
            addr: local_addr,
            shutdown,
            accept: Some(accept),
            shard_txs,
            shard_threads,
            conns,
            budget,
        })
    }
}

/// Owner handle: keeps the daemon alive; dropping it (or calling
/// [`ServerHandle::shutdown`]) stops the accept loop, closes every
/// connection, and joins all worker threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    shard_txs: Vec<mpsc::Sender<ShardMsg>>,
    shard_threads: Vec<JoinHandle<()>>,
    conns: ConnRegistry,
    budget: Arc<ReadviseBudget>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a wire `Shutdown` request (or [`Self::shutdown`]) has
    /// been seen.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a wire `Shutdown` request arrives (the binary's main
    /// thread parks on this).
    pub fn wait_for_shutdown(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    /// Longest any tenant waited for a re-advise permit, in grant
    /// events — the figure the multi-tenant experiment bounds.
    pub fn max_readvise_wait_events(&self) -> u64 {
        self.budget.max_wait_events()
    }

    /// Stops the daemon and joins every thread. Idempotent; also runs on
    /// drop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        // Close every live connection so its reader sees EOF.
        let conns = std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for (stream, reader) in conns {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = reader.join();
        }
        for tx in &self.shard_txs {
            let _ = tx.send(ShardMsg::Stop);
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    shard_txs: &[mpsc::Sender<ShardMsg>],
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = mpsc::channel::<(u64, Response)>();
    let writer = std::thread::Builder::new()
        .name("pinum-conn-writer".into())
        .spawn(move || {
            let mut out = std::io::BufWriter::new(write_half);
            while let Ok((id, resp)) = reply_rx.recv() {
                if write_response(&mut out, id, &resp).is_err() {
                    break;
                }
                if std::io::Write::flush(&mut out).is_err() {
                    break;
                }
            }
        })
        .expect("spawn connection writer");

    loop {
        match read_request(&mut stream) {
            Ok(FrameIn::Msg { request_id, msg }) => match msg {
                Request::Shutdown => {
                    let _ = reply_tx.send((request_id, Response::ShuttingDown));
                    shutdown.store(true, Ordering::SeqCst);
                    // Nudge the accept loop awake so it observes the flag.
                    if let Ok(addr) = stream.local_addr() {
                        let _ = TcpStream::connect(addr);
                    }
                    break;
                }
                req => {
                    let tenant = req
                        .tenant()
                        .expect("every request except Shutdown names a tenant");
                    let shard = shard_of(tenant, shard_txs.len());
                    let sent = shard_txs[shard].send(ShardMsg::Request {
                        request_id,
                        req: Box::new(req),
                        reply: reply_tx.clone(),
                    });
                    if sent.is_err() {
                        let _ = reply_tx.send((
                            request_id,
                            Response::Error {
                                code: ErrorCode::ShuttingDown,
                                detail: "shard workers have stopped".into(),
                            },
                        ));
                        break;
                    }
                }
            },
            // Framing intact, payload bad: typed error reply, keep going.
            Ok(FrameIn::Bad { request_id, error }) if error.frame_recoverable() => {
                let _ = reply_tx.send((
                    request_id.unwrap_or(0),
                    Response::Error {
                        code: ErrorCode::Malformed,
                        detail: error.to_string(),
                    },
                ));
            }
            // Clean EOF, torn frame, or transport error: close.
            Ok(FrameIn::Eof) | Ok(FrameIn::Bad { .. }) | Err(_) => break,
        }
    }
    drop(reply_tx);
    let _ = writer.join();
    // Shut the socket down explicitly: the handle keeps a clone of this
    // stream for forced close, and that clone would otherwise hold the
    // fd open and deny the peer its EOF.
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Per-shard persistence context: the snapshot root (if any) plus the
/// shard coordinates needed to claim tenant directories at start-up.
struct Persistence {
    root: Option<PathBuf>,
    snapshot_every: usize,
    shard: usize,
    shards: usize,
}

/// Recovers every durable tenant under `root` that hashes to this shard.
/// A tenant whose files will not recover is skipped with a note on
/// stderr — one corrupt directory must not take the daemon down.
fn recover_shard_tenants(
    tenants: &mut HashMap<u64, TenantState>,
    persistence: &Persistence,
) -> std::io::Result<()> {
    let Some(root) = &persistence.root else {
        return Ok(());
    };
    if !root.exists() {
        return Ok(());
    }
    for entry in std::fs::read_dir(root)? {
        let path = entry?.path();
        let Some(tenant) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("tenant-"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        if shard_of(tenant, persistence.shards) != persistence.shard {
            continue;
        }
        match PersistentAdvisor::open(&path, persistence.snapshot_every) {
            Ok((advisor, report)) => {
                if report.log_discarded_bytes > 0 || report.snapshots_discarded > 0 {
                    eprintln!(
                        "pinum-server: tenant {tenant} recovered with losses: \
                         {} torn log bytes truncated, {} corrupt snapshot(s) skipped",
                        report.log_discarded_bytes, report.snapshots_discarded
                    );
                }
                tenants.insert(tenant, TenantState { advisor });
            }
            Err(e) => {
                eprintln!("pinum-server: tenant {tenant} not recovered ({e}); skipping");
            }
        }
    }
    Ok(())
}

/// One queued request together with everything needed to answer it.
type QueuedRequest = (u64, Box<Request>, mpsc::Sender<(u64, Response)>);

fn shard_worker(rx: mpsc::Receiver<ShardMsg>, budget: &ReadviseBudget, persistence: &Persistence) {
    let mut tenants: HashMap<u64, TenantState> = HashMap::new();
    if let Err(e) = recover_shard_tenants(&mut tenants, persistence) {
        eprintln!(
            "pinum-server: shard {} could not scan the snapshot root ({e})",
            persistence.shard
        );
    }
    let mut queue: VecDeque<QueuedRequest> = VecDeque::new();
    let mut stopping = false;
    while !stopping {
        // Block for the next message, then drain whatever else already
        // sits in the mailbox: the drained backlog is what same-tenant
        // coalescing feeds on. An empty mailbox degrades to the old
        // one-message-at-a-time loop with identical results.
        match rx.recv() {
            Ok(ShardMsg::Stop) | Err(_) => break,
            Ok(ShardMsg::Request {
                request_id,
                req,
                reply,
            }) => queue.push_back((request_id, req, reply)),
        }
        loop {
            match rx.try_recv() {
                Ok(ShardMsg::Request {
                    request_id,
                    req,
                    reply,
                }) => queue.push_back((request_id, req, reply)),
                // Stop mid-drain still answers everything already queued.
                Ok(ShardMsg::Stop) => {
                    stopping = true;
                    break;
                }
                Err(_) => break,
            }
        }
        process_queue(&mut queue, &mut tenants, budget, persistence);
    }
}

/// The tenant a request admits into, if it is an admission message.
fn admission_tenant(req: &Request) -> Option<u64> {
    match req {
        Request::AdmitQuery { tenant, .. } | Request::AdmitBatch { tenant, .. } => Some(*tenant),
        _ => None,
    }
}

/// Destructures an admission request into its tenant and admission list;
/// any other request comes back untouched for [`handle_request`].
#[allow(clippy::result_large_err)] // Err is the request handed back whole, by design
fn as_admissions(req: Request) -> Result<(u64, Vec<WireAdmission>), Request> {
    match req {
        Request::AdmitQuery { tenant, admission } => Ok((tenant, vec![admission])),
        Request::AdmitBatch { tenant, admissions } => Ok((tenant, admissions)),
        other => Err(other),
    }
}

/// Answers every queued request in arrival order. Maximal contiguous
/// runs of admission messages for the same tenant are coalesced into
/// group-committed batches by [`handle_admission_run`]; everything else
/// dispatches one message at a time. Arrival order is preserved exactly,
/// so per-tenant results stay bit-identical to the serial loop.
fn process_queue(
    queue: &mut VecDeque<QueuedRequest>,
    tenants: &mut HashMap<u64, TenantState>,
    budget: &ReadviseBudget,
    persistence: &Persistence,
) {
    while let Some((request_id, req, reply)) = queue.pop_front() {
        match as_admissions(*req) {
            Ok((tenant, admissions)) => {
                let mut run = vec![(request_id, admissions, reply)];
                while queue
                    .front()
                    .is_some_and(|(_, req, _)| admission_tenant(req) == Some(tenant))
                {
                    let (id, req, reply) = queue.pop_front().expect("front was just checked");
                    let (_, admissions) =
                        as_admissions(*req).expect("front matched an admission message");
                    run.push((id, admissions, reply));
                }
                handle_admission_run(tenants, budget, tenant, run);
            }
            Err(req) => {
                let resp = handle_request(tenants, budget, persistence, req);
                // A gone client is not an error; its socket closed.
                let _ = reply.send((request_id, resp));
            }
        }
    }
}

/// One wire admission converted and validated, ready to borrow into an
/// [`AdmissionSpec`].
type ConvertedAdmission = (PlanCache, AccessCostCatalog, Vec<TemplateKey>, f64);

/// One queued admission message inside a coalesced same-tenant run:
/// request id, its admission list, and the connection's reply channel.
type AdmissionRun = (u64, Vec<WireAdmission>, mpsc::Sender<(u64, Response)>);

/// Validates one wire admission exactly like the serial [`admit_one`]
/// path, without touching the advisor — conversion happens up-front so a
/// malformed admission is rejected before anything is journaled.
#[allow(clippy::result_large_err)]
fn convert_admission(pool_len: usize, w: &WireAdmission) -> Result<ConvertedAdmission, Response> {
    let check = |ok: bool, msg: &'static str| {
        if ok {
            Ok(())
        } else {
            Err(malformed(ConvertError(msg)))
        }
    };
    check(
        w.weight.is_finite() && w.weight > 0.0,
        "weight must be finite and positive",
    )?;
    let cache = convert::cache_from_wire(&w.cache).map_err(malformed)?;
    let access = convert::access_from_wire(&w.access, pool_len).map_err(malformed)?;
    check(
        access.per_rel().len() == cache.n_rels,
        "access catalog arity does not match the plan cache",
    )?;
    let templates: Vec<_> = w
        .templates
        .iter()
        .map(convert::template_from_wire)
        .collect();
    Ok((cache, access, templates, w.weight))
}

fn result_to_wire(admission: Admission) -> WireAdmitResult {
    WireAdmitResult {
        ordinal: admission.ordinal as u64,
        qid: admission.qid as u64,
        evicted: admission.evicted.map(|q| q as u64),
        readvise: admission.readvise.as_ref().map(convert::report_to_wire),
    }
}

/// Applies a contiguous run of same-tenant admission messages through
/// [`PersistentAdvisor::apply_batch`]: every admission in a segment is
/// journaled with **one** group-committed fsync per
/// [`GroupCommitPolicy`] chunk, then spliced through the batched session
/// path. The shard thread is the tenant's only mutator and the segment
/// preserves arrival order, so each result is bit-identical to sending
/// the same admissions one at a time.
///
/// A conversion failure ends the current segment at the failing message:
/// the valid prefix (prior messages plus the failing message's own valid
/// leading admissions) is applied — exactly what the serial path would
/// have applied before hitting the error — the failing message gets its
/// error response, and the remaining messages start a fresh segment.
fn handle_admission_run(
    tenants: &mut HashMap<u64, TenantState>,
    budget: &ReadviseBudget,
    tenant: u64,
    run: Vec<AdmissionRun>,
) {
    let Some(state) = tenants.get_mut(&tenant) else {
        for (id, _, reply) in run {
            let _ = reply.send((id, unknown_tenant(tenant)));
        }
        return;
    };
    let pool_len = state.advisor.advisor().pool().indexes().len();
    let mut msgs: VecDeque<_> = run.into();
    while !msgs.is_empty() {
        // Convert up-front until the first invalid admission; `counts`
        // records how many converted admissions belong to each message.
        let mut converted: Vec<ConvertedAdmission> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let mut whole_msgs = 0usize;
        let mut failure: Option<Response> = None;
        'convert: for (_, admissions, _) in &msgs {
            let mut n = 0usize;
            for w in admissions {
                match convert_admission(pool_len, w) {
                    Ok(c) => {
                        converted.push(c);
                        n += 1;
                    }
                    Err(resp) => {
                        failure = Some(resp);
                        counts.push(n);
                        break 'convert;
                    }
                }
            }
            counts.push(n);
            whole_msgs += 1;
        }

        // Deferred so the triggered re-advise waits for a budget permit;
        // the permit guard is held across each re-advise the batch runs.
        let specs: Vec<AdmissionSpec<'_>> = converted
            .iter()
            .map(|(cache, access, templates, weight)| {
                AdmissionSpec::new(cache, access)
                    .weight(*weight)
                    .templates(templates)
                    .deferred(true)
            })
            .collect();
        let applied = if specs.is_empty() {
            Ok(Vec::new())
        } else {
            state
                .advisor
                .apply_batch(&specs, GroupCommitPolicy::default(), |_| {
                    budget.acquire(tenant)
                })
        };

        match applied {
            Ok(admissions) => {
                let mut results = admissions.into_iter();
                for &n in counts.iter().take(whole_msgs) {
                    let (id, _, reply) = msgs.pop_front().expect("message per count");
                    let batch: Vec<_> = results.by_ref().take(n).map(result_to_wire).collect();
                    let _ = reply.send((id, Response::Admitted { results: batch }));
                }
                if let Some(resp) = failure {
                    // The failing message's valid prefix was applied —
                    // serial semantics — but its response is the error.
                    let (id, _, reply) = msgs.pop_front().expect("failing message queued");
                    let _ = reply.send((id, resp));
                }
            }
            Err(e) => {
                // The journal write failed before any admission touched
                // the advisor, so the whole segment (including the
                // conversion-failed message, whose prefix never applied)
                // reports the persistence error.
                let segment = whole_msgs + usize::from(failure.is_some());
                for _ in 0..segment {
                    let (id, _, reply) = msgs.pop_front().expect("message per segment entry");
                    let _ = reply.send((id, persistence_failed(&e)));
                }
            }
        }
    }
}

fn malformed(e: ConvertError) -> Response {
    Response::Error {
        code: ErrorCode::Malformed,
        detail: e.to_string(),
    }
}

fn unknown_tenant(tenant: u64) -> Response {
    Response::Error {
        code: ErrorCode::UnknownTenant,
        detail: format!("tenant {tenant} was never created on this daemon"),
    }
}

fn persistence_failed(e: &PersistError) -> Response {
    Response::Error {
        code: ErrorCode::Persistence,
        detail: e.to_string(),
    }
}

fn handle_request(
    tenants: &mut HashMap<u64, TenantState>,
    budget: &ReadviseBudget,
    persistence: &Persistence,
    req: Request,
) -> Response {
    match req {
        Request::CreateTenant {
            tenant,
            pool,
            options,
        } => {
            if tenants.contains_key(&tenant) {
                return Response::Error {
                    code: ErrorCode::TenantExists,
                    detail: format!("tenant {tenant} already exists"),
                };
            }
            let pool = match convert::pool_from_wire(&pool) {
                Ok(p) => p,
                Err(e) => return malformed(e),
            };
            let opts = match convert::options_from_wire(&options) {
                Ok(o) => o,
                Err(e) => return malformed(e),
            };
            let advisor = match &persistence.root {
                Some(root) => {
                    match PersistentAdvisor::create(
                        &tenant_dir(root, tenant),
                        pool,
                        opts,
                        persistence.snapshot_every,
                    ) {
                        Ok(a) => a,
                        Err(e) => return persistence_failed(&e),
                    }
                }
                None => PersistentAdvisor::volatile(pool, opts),
            };
            tenants.insert(tenant, TenantState { advisor });
            Response::TenantCreated { tenant }
        }
        // The two admission arms below are the reference serial path.
        // `process_queue` routes every admission message through
        // `handle_admission_run` instead, so these arms are reached only
        // by direct `handle_request` callers — kept because they define
        // the semantics the coalesced path must reproduce bit for bit.
        Request::AdmitQuery { tenant, admission } => {
            let Some(state) = tenants.get_mut(&tenant) else {
                return unknown_tenant(tenant);
            };
            match admit_one(&mut state.advisor, budget, tenant, &admission) {
                Ok(result) => Response::Admitted {
                    results: vec![result],
                },
                Err(error) => error,
            }
        }
        Request::AdmitBatch { tenant, admissions } => {
            let Some(state) = tenants.get_mut(&tenant) else {
                return unknown_tenant(tenant);
            };
            let mut results = Vec::with_capacity(admissions.len());
            for admission in &admissions {
                // Fail the batch at the first bad admission; everything
                // before it has already been applied, exactly as if sent
                // one by one.
                match admit_one(&mut state.advisor, budget, tenant, admission) {
                    Ok(result) => results.push(result),
                    Err(error) => return error,
                }
            }
            Response::Admitted { results }
        }
        Request::ReweightAdmission {
            tenant,
            admission,
            weight,
        } => {
            let Some(state) = tenants.get_mut(&tenant) else {
                return unknown_tenant(tenant);
            };
            if !(weight.is_finite() && weight > 0.0) {
                return malformed(ConvertError("weight must be finite and positive"));
            }
            if admission >= state.advisor.advisor().stats().admits as u64 {
                return malformed(ConvertError("admission ordinal was never issued"));
            }
            let outcome = match state.advisor.reweight(admission as usize, weight, true) {
                Ok(o) => o,
                Err(e) => return persistence_failed(&e),
            };
            let mut readvise = None;
            if let Some(t) = outcome.pending {
                let _permit = budget.acquire(tenant);
                match state.advisor.readvise_triggered(t) {
                    Ok(report) => readvise = Some(convert::report_to_wire(&report)),
                    Err(e) => return persistence_failed(&e),
                }
            }
            Response::Reweighted {
                applied: outcome.applied,
                readvise,
            }
        }
        Request::EvictQuery { tenant, admission } => {
            let Some(state) = tenants.get_mut(&tenant) else {
                return unknown_tenant(tenant);
            };
            if admission >= state.advisor.advisor().stats().admits as u64 {
                return malformed(ConvertError("admission ordinal was never issued"));
            }
            match state.advisor.evict_admission(admission as usize) {
                Ok(applied) => Response::Evicted { applied },
                Err(e) => persistence_failed(&e),
            }
        }
        Request::ForceReadvise { tenant } => {
            let Some(state) = tenants.get_mut(&tenant) else {
                return unknown_tenant(tenant);
            };
            let report = {
                let _permit = budget.acquire(tenant);
                state.advisor.readvise()
            };
            match report {
                Ok(report) => Response::Readvised {
                    report: convert::report_to_wire(&report),
                },
                Err(e) => persistence_failed(&e),
            }
        }
        Request::GetSelection { tenant } => {
            let Some(state) = tenants.get(&tenant) else {
                return unknown_tenant(tenant);
            };
            let advisor = state.advisor.advisor();
            let selection = advisor.selection();
            Response::Selection {
                ids: selection.ids().map(|i| i as u64).collect(),
                total_bytes: advisor.pool().selection_bytes(selection),
                cost: advisor.current_cost(),
            }
        }
        Request::GetStats { tenant } => {
            let Some(state) = tenants.get(&tenant) else {
                return unknown_tenant(tenant);
            };
            let b = budget.stats(tenant);
            Response::Stats {
                stats: convert::stats_to_wire(state.advisor.advisor().stats()),
                budget: WireBudgetStats {
                    grants: b.grants,
                    waits: b.waits,
                    max_wait_events: b.max_wait_events,
                    total_wait_events: b.total_wait_events,
                },
            }
        }
        Request::SnapshotNow { tenant } => {
            let Some(state) = tenants.get_mut(&tenant) else {
                return unknown_tenant(tenant);
            };
            match state.advisor.snapshot_now() {
                Ok(Some(log_seq)) => Response::SnapshotTaken { log_seq },
                Ok(None) => Response::Error {
                    code: ErrorCode::PersistenceDisabled,
                    detail: format!("tenant {tenant} runs without a snapshot directory"),
                },
                Err(e) => persistence_failed(&e),
            }
        }
        Request::TenantEpoch { tenant } => {
            let Some(state) = tenants.get(&tenant) else {
                return unknown_tenant(tenant);
            };
            let p = state.advisor.persist_stats();
            Response::Epoch {
                durable: state.advisor.is_durable(),
                log_seq: state.advisor.log_seq(),
                snapshot_seq: state.advisor.last_snapshot_seq(),
                appends: p.appends,
                fsyncs: p.fsyncs,
                batches: p.batches,
                max_batch_records: p.max_batch_records,
            }
        }
        Request::Shutdown => unreachable!("shutdown is handled by the connection reader"),
    }
}

// The Err side is the complete wire `Response` for the failed admission
// — built once per error, so its size is irrelevant.
#[allow(clippy::result_large_err)]
fn admit_one(
    advisor: &mut PersistentAdvisor,
    budget: &ReadviseBudget,
    tenant: u64,
    w: &WireAdmission,
) -> Result<WireAdmitResult, Response> {
    let check = |ok: bool, msg: &'static str| {
        if ok {
            Ok(())
        } else {
            Err(malformed(ConvertError(msg)))
        }
    };
    check(
        w.weight.is_finite() && w.weight > 0.0,
        "weight must be finite and positive",
    )?;
    let cache = convert::cache_from_wire(&w.cache).map_err(malformed)?;
    let pool_len = advisor.advisor().pool().indexes().len();
    let access = convert::access_from_wire(&w.access, pool_len).map_err(malformed)?;
    check(
        access.per_rel().len() == cache.n_rels,
        "access catalog arity does not match the plan cache",
    )?;
    let templates: Vec<_> = w
        .templates
        .iter()
        .map(convert::template_from_wire)
        .collect();
    // The wire admission IS an `AdmissionSpec`; deferred because the
    // triggered re-advise must wait for a budget permit.
    let spec = AdmissionSpec::new(&cache, &access)
        .weight(w.weight)
        .templates(&templates)
        .deferred(true);
    let admission = advisor.apply(spec).map_err(|e| persistence_failed(&e))?;
    // The budget gates *when* the re-advise runs, never *what* it
    // computes: this shard thread is the only mutator of this advisor,
    // so the deferred execution is bit-identical to the inline one.
    let readvise = match admission.pending {
        Some(t) => {
            let _permit = budget.acquire(tenant);
            let report = advisor
                .readvise_triggered(t)
                .map_err(|e| persistence_failed(&e))?;
            Some(convert::report_to_wire(&report))
        }
        None => None,
    };
    Ok(WireAdmitResult {
        ordinal: admission.ordinal as u64,
        qid: admission.qid as u64,
        evicted: admission.evicted.map(|q| q as u64),
        readvise,
    })
}
