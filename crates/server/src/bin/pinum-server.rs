//! CLI entry point for the multi-tenant advisor daemon.
//!
//! ```text
//! pinum-server [--port N] [--shards N] [--budget N]
//!              [--snapshot-dir PATH] [--snapshot-every N]
//! ```
//!
//! - `--port` (default 0): TCP port to bind on 127.0.0.1; 0 picks an
//!   ephemeral port. The bound address is printed as
//!   `listening on <addr>` so harnesses can parse it.
//! - `--shards` (default 4): shard worker threads; tenants are assigned
//!   by tenant-id hash.
//! - `--budget` (default 2): re-advises allowed to run concurrently.
//! - `--snapshot-dir` (default: none, volatile): root directory for
//!   tenant journals and snapshots. Tenants found under it are recovered
//!   at start-up, bit-identical to the daemon that wrote them.
//! - `--snapshot-every` (default 32): admissions between automatic
//!   snapshots per tenant; 0 cuts snapshots only on `SnapshotNow`.
//!
//! `PINUM_THREADS` passes through to the probe pool: it overrides the
//! pool's worker count exactly as in the library (see the Sizing notes
//! on `pinum_core::ProbePool`); without it the pool divides the cores by
//! `--shards` so concurrent re-advises do not oversubscribe.
//!
//! The process exits after a wire `Shutdown` request.

use pinum_server::{Server, ServerConfig};

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    let pos = args.iter().position(|a| a == flag)?;
    let value = args.get(pos + 1).unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    });
    match value.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("error: {flag} wants an unsigned integer, got {value:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: pinum-server [--port N] [--shards N] [--budget N] \
             [--snapshot-dir PATH] [--snapshot-every N]"
        );
        return;
    }
    let port = parse_flag(&args, "--port").unwrap_or(0) as u16;
    let snapshot_dir =
        args.iter()
            .position(|a| a == "--snapshot-dir")
            .map(|pos| match args.get(pos + 1) {
                Some(value) => std::path::PathBuf::from(value),
                None => {
                    eprintln!("error: --snapshot-dir needs a value");
                    std::process::exit(2);
                }
            });
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        shards: parse_flag(&args, "--shards").unwrap_or(defaults.shards as u64) as usize,
        budget: parse_flag(&args, "--budget").unwrap_or(defaults.budget as u64) as usize,
        snapshot_every: parse_flag(&args, "--snapshot-every")
            .unwrap_or(defaults.snapshot_every as u64) as usize,
        snapshot_dir,
    };

    let handle = match Server::start(("127.0.0.1", port), config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.addr());
    // Make sure the harness sees the address even through a pipe.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    handle.wait_for_shutdown();
    handle.shutdown();
    println!("shutdown complete");
}
