//! The global re-advise budget: at most K re-advises run concurrently
//! across all tenants, with an aging queue so a noisy tenant cannot
//! monopolize the permits.
//!
//! ## Why a budget
//!
//! Re-advises are the daemon's expensive operation and they all fan out
//! over the one process-global `ProbePool`; letting every shard re-advise
//! whenever its tenants drift would oversubscribe the pool's dispatch
//! mutex and stall admissions behind a convoy. The budget caps the
//! concurrency at a configured K and decides *who goes next* when a
//! permit frees.
//!
//! ## Aging discipline
//!
//! Time is counted in **grant events** (a monotone counter bumped every
//! time a permit is granted) — a deterministic unit, unlike wall clock.
//! Each waiter's effective priority is
//!
//! ```text
//! score(tenant) = lifetime_grants(tenant) − events_waited
//! ```
//!
//! and the waiter with the *lowest* score wins (ties broken by arrival
//! order). Fresh tenants (few grants) win immediately; a tenant that has
//! been granted often starts behind, but every grant that passes while
//! it waits discounts one grant from its history — so its wait is
//! bounded by its grant surplus plus the queue length, never unbounded.
//! Per-tenant wait statistics (in grant events) are recorded for
//! `GetStats` and gated by the multi-tenant experiment.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// Per-tenant budget accounting, reported via `GetStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantBudgetStats {
    /// Permits granted to this tenant.
    pub grants: u64,
    /// Grants that had to queue (no permit free on arrival).
    pub waits: u64,
    /// Longest single wait, in grant events elapsed while queued.
    pub max_wait_events: u64,
    /// Sum of waits in grant events.
    pub total_wait_events: u64,
}

#[derive(Debug)]
struct Waiter {
    tenant: u64,
    /// Grant-event clock when the waiter queued.
    enqueued_at: u64,
    /// Arrival tie-breaker.
    seq: u64,
    /// Set by the granter; the waiter consumes it and leaves the queue.
    granted: bool,
}

#[derive(Debug, Default)]
struct State {
    available: usize,
    queue: Vec<Waiter>,
    /// Monotone grant-event clock.
    grant_events: u64,
    /// Arrival sequence for FIFO tie-breaks.
    arrivals: u64,
    grants_by_tenant: HashMap<u64, u64>,
    stats: HashMap<u64, TenantBudgetStats>,
}

impl State {
    /// Grants one free permit to the best waiter, if any. Returns the
    /// arrival seq of the granted waiter.
    fn grant_next(&mut self) -> Option<u64> {
        if self.available == 0 || self.queue.is_empty() {
            return None;
        }
        let best = self
            .queue
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.granted)
            .min_by_key(|(_, w)| {
                let grants = *self.grants_by_tenant.get(&w.tenant).unwrap_or(&0) as i64;
                let age = (self.grant_events - w.enqueued_at) as i64;
                (grants - age, w.seq)
            })?
            .0;
        self.available -= 1;
        let (tenant, waited, seq) = {
            let w = &mut self.queue[best];
            w.granted = true;
            (w.tenant, self.grant_events - w.enqueued_at, w.seq)
        };
        self.record_grant(tenant, waited, true);
        Some(seq)
    }

    fn record_grant(&mut self, tenant: u64, waited_events: u64, queued: bool) {
        self.grant_events += 1;
        *self.grants_by_tenant.entry(tenant).or_insert(0) += 1;
        let s = self.stats.entry(tenant).or_default();
        s.grants += 1;
        if queued {
            s.waits += 1;
            s.max_wait_events = s.max_wait_events.max(waited_events);
            s.total_wait_events += waited_events;
        }
    }
}

/// Counting semaphore with the aging grant discipline described in the
/// module docs. `acquire` blocks the calling shard thread; dropping the
/// returned [`BudgetPermit`] releases the permit and wakes the queue.
#[derive(Debug)]
pub struct ReadviseBudget {
    state: Mutex<State>,
    cv: Condvar,
}

impl ReadviseBudget {
    /// A budget of `permits` concurrent re-advises (floored at 1 — a
    /// zero budget would deadlock every re-advise forever).
    pub fn new(permits: usize) -> Self {
        Self {
            state: Mutex::new(State {
                available: permits.max(1),
                ..State::default()
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until `tenant` is granted a permit.
    pub fn acquire(&self, tenant: u64) -> BudgetPermit<'_> {
        let mut st = self.state.lock().expect("budget mutex");
        if st.available > 0 && st.queue.iter().all(|w| w.granted) {
            // Fast path: a permit is free and nobody ungranted is ahead.
            st.available -= 1;
            st.record_grant(tenant, 0, false);
            return BudgetPermit { budget: self };
        }
        let seq = st.arrivals;
        st.arrivals += 1;
        let enqueued_at = st.grant_events;
        st.queue.push(Waiter {
            tenant,
            enqueued_at,
            seq,
            granted: false,
        });
        loop {
            // A release may have freed a permit for this waiter (or for a
            // better-scored one — the granter decides).
            if let Some(granted_seq) = st.grant_next() {
                if granted_seq != seq {
                    self.cv.notify_all();
                }
            }
            if let Some(pos) = st.queue.iter().position(|w| w.seq == seq && w.granted) {
                st.queue.remove(pos);
                return BudgetPermit { budget: self };
            }
            st = self.cv.wait(st).expect("budget mutex");
        }
    }

    /// This tenant's accounting so far (zeroes when it never re-advised).
    pub fn stats(&self, tenant: u64) -> TenantBudgetStats {
        let st = self.state.lock().expect("budget mutex");
        st.stats.get(&tenant).copied().unwrap_or_default()
    }

    /// Max `max_wait_events` across all tenants — the headline the
    /// multi-tenant experiment bounds.
    pub fn max_wait_events(&self) -> u64 {
        let st = self.state.lock().expect("budget mutex");
        st.stats
            .values()
            .map(|s| s.max_wait_events)
            .max()
            .unwrap_or(0)
    }

    fn release(&self) {
        let mut st = self.state.lock().expect("budget mutex");
        st.available += 1;
        if st.grant_next().is_some() {
            self.cv.notify_all();
        }
    }
}

/// RAII permit: the re-advise runs while this is alive.
#[derive(Debug)]
pub struct BudgetPermit<'a> {
    budget: &'a ReadviseBudget,
}

impl Drop for BudgetPermit<'_> {
    fn drop(&mut self) {
        self.budget.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn budget_caps_concurrency() {
        let budget = Arc::new(ReadviseBudget::new(2));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let (b, r, p) = (budget.clone(), running.clone(), peak.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    let _permit = b.acquire(t);
                    let now = r.fetch_add(1, Ordering::SeqCst) + 1;
                    p.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    r.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "budget exceeded");
        // Every grant was recorded.
        let total: u64 = (0..8).map(|t| budget.stats(t).grants).sum();
        assert_eq!(total, 160);
    }

    #[test]
    fn aging_bounds_a_starved_tenants_wait() {
        // Single permit. Tenant 0 grabs it many times first (a noisy
        // tenant); then tenants 0 and 1 contend. Tenant 1 must be
        // preferred until the age discount catches tenant 0 up, and its
        // max wait must stay far below tenant 0's grant surplus.
        let budget = ReadviseBudget::new(1);
        for _ in 0..50 {
            drop(budget.acquire(0));
        }
        let budget = Arc::new(budget);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in [0u64, 1] {
            let (b, o) = (budget.clone(), order.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    let permit = b.acquire(t);
                    o.lock().unwrap().push(t);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    drop(permit);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The starved tenant was never pushed behind the whole noisy
        // history: its longest wait is bounded by the queue dynamics
        // (one competitor), not by tenant 0's 50-grant surplus.
        assert!(
            budget.stats(1).max_wait_events <= 4,
            "starved tenant waited {} grant events",
            budget.stats(1).max_wait_events
        );
        assert_eq!(order.lock().unwrap().len(), 20);
    }

    #[test]
    fn zero_budget_is_floored_to_one() {
        let budget = ReadviseBudget::new(0);
        drop(budget.acquire(7));
        assert_eq!(budget.stats(7).grants, 1);
        assert_eq!(budget.max_wait_events(), 0);
    }
}
