//! End-to-end daemon tests over loopback TCP: the wire determinism
//! contract (daemon tenants are bit-identical to in-process advisors),
//! typed error behavior, and hostile-input survival.

use pinum_core::access_costs::{collect_pinum, AccessCostCatalog};
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{CandidatePool, PlanCache};
use pinum_online::{query_templates, AdmissionSpec, OnlineAdvisor, OnlineAdvisorOptions};
use pinum_optimizer::Optimizer;
use pinum_protocol::{Client, ErrorCode, Request, Response, WireAdmission, WireOptions};
use pinum_query::{Query, TemplateKey};
use pinum_server::{convert, Server, ServerConfig};
use pinum_workload::drift::{DriftProfile, DriftStream};
use pinum_workload::star::StarSchema;

const BUDGET_BYTES: u64 = 1 << 30;

struct Fixture {
    queries: Vec<(Query, f64)>,
    pool: CandidatePool,
    models: Vec<(PlanCache, AccessCostCatalog)>,
}

/// Same construction as the online crate's own tests: a small drifting
/// stream priced against a generated candidate pool.
fn fixture(drift_seed: u64, phases: usize, phase_length: usize) -> Fixture {
    let schema = StarSchema::generate(42, 0.001);
    let profile = DriftProfile {
        phases,
        phase_length,
        edge_window: 3,
        churn: 0.05,
        growth_per_phase: 1.0,
    };
    let stream: Vec<_> = DriftStream::new(&schema, drift_seed, profile).collect();
    let queries: Vec<(Query, f64)> = stream.into_iter().map(|d| (d.query, d.weight)).collect();
    let only: Vec<Query> = queries.iter().map(|(q, _)| q.clone()).collect();
    let pool = pinum_advisor::candidates::generate_candidates(&schema.catalog, &only);
    let optimizer = Optimizer::new(&schema.catalog);
    let models = only
        .iter()
        .map(|q| {
            let built = build_cache_pinum(&optimizer, q, &BuilderOptions::default());
            let (access, _) = collect_pinum(&optimizer, q, &pool);
            (built.cache, access)
        })
        .collect();
    Fixture {
        queries,
        pool,
        models,
    }
}

fn options(window: usize, epoch: usize) -> OnlineAdvisorOptions {
    OnlineAdvisorOptions {
        window_capacity: window,
        epoch_length: epoch,
        ..OnlineAdvisorOptions::defaults(BUDGET_BYTES)
    }
}

fn wire_options(opts: &OnlineAdvisorOptions) -> WireOptions {
    convert::options_to_wire(opts).expect("test options are wire-expressible")
}

fn wire_admission(
    cache: &PlanCache,
    access: &AccessCostCatalog,
    weight: f64,
    templates: &[TemplateKey],
) -> WireAdmission {
    WireAdmission {
        cache: convert::cache_to_wire(cache),
        access: convert::access_to_wire(access),
        weight,
        templates: templates.iter().map(convert::template_to_wire).collect(),
    }
}

/// Drives one tenant's whole stream through a wire client and returns
/// the daemon's final (ids, cost bits, full_repricings).
fn drive_tenant(
    addr: std::net::SocketAddr,
    tenant: u64,
    fx: &Fixture,
    opts: &OnlineAdvisorOptions,
) -> (Vec<u64>, u64, u64) {
    let mut client = Client::connect(addr).expect("connect");
    let resp = client
        .call(&Request::CreateTenant {
            tenant,
            pool: convert::pool_to_wire(&fx.pool),
            options: wire_options(opts),
        })
        .expect("create tenant");
    assert!(matches!(resp, Response::TenantCreated { tenant: t } if t == tenant));

    for (i, (cache, access)) in fx.models.iter().enumerate() {
        let (query, weight) = &fx.queries[i];
        let templates = query_templates(query);
        let resp = client
            .call(&Request::AdmitQuery {
                tenant,
                admission: wire_admission(cache, access, *weight, &templates),
            })
            .expect("admit");
        let Response::Admitted { results } = resp else {
            panic!("unexpected admit reply: {resp:?}");
        };
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].ordinal, i as u64);
        // Exercise the deferred reweight path over the wire too.
        if i % 4 == 3 {
            let resp = client
                .call(&Request::ReweightAdmission {
                    tenant,
                    admission: i as u64,
                    weight: *weight * 1.5,
                })
                .expect("reweight");
            assert!(matches!(resp, Response::Reweighted { applied: true, .. }));
        }
    }

    let Response::Selection {
        ids,
        total_bytes,
        cost,
    } = client
        .call(&Request::GetSelection { tenant })
        .expect("selection")
    else {
        panic!("unexpected selection reply");
    };
    assert_eq!(total_bytes, {
        let sel = pinum_core::Selection::from_ids(
            fx.pool.indexes().len(),
            &ids.iter().map(|&i| i as usize).collect::<Vec<_>>(),
        );
        fx.pool.selection_bytes(&sel)
    });
    let Response::Stats { stats, .. } = client.call(&Request::GetStats { tenant }).expect("stats")
    else {
        panic!("unexpected stats reply");
    };
    (ids, cost.to_bits(), stats.full_repricings)
}

/// The same stream applied to an in-process advisor (the baseline the
/// daemon must match bit for bit).
fn baseline(fx: &Fixture, opts: &OnlineAdvisorOptions) -> (Vec<u64>, u64, u64) {
    let mut advisor = OnlineAdvisor::new(fx.pool.clone(), *opts);
    for (i, (cache, access)) in fx.models.iter().enumerate() {
        let (query, weight) = &fx.queries[i];
        let templates = query_templates(query);
        advisor.apply(
            AdmissionSpec::new(cache, access)
                .weight(*weight)
                .templates(&templates),
        );
        if i % 4 == 3 {
            advisor.reweight(i, *weight * 1.5, false);
        }
    }
    (
        advisor.selection().ids().map(|i| i as u64).collect(),
        advisor.current_cost().to_bits(),
        advisor.stats().full_repricings as u64,
    )
}

#[test]
fn daemon_tenants_are_bit_identical_to_in_process_advisors() {
    // Two shards, two tenants driven concurrently from separate
    // connections: the shard serialization must keep each tenant's
    // results exactly what a single-threaded embedding computes, even on
    // a 1-core box (satellite: the global probe pool defaults stay
    // deterministic under a sharded server).
    let server = Server::start(
        ("127.0.0.1", 0),
        ServerConfig {
            shards: 2,
            budget: 1,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    let opts = options(12, 5);

    let fixtures: Vec<Fixture> = vec![fixture(9, 3, 10), fixture(11, 3, 10)];
    let expected: Vec<_> = fixtures.iter().map(|fx| baseline(fx, &opts)).collect();

    let got: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = fixtures
            .iter()
            .enumerate()
            .map(|(t, fx)| scope.spawn(move || drive_tenant(addr, t as u64, fx, &opts)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect()
    });

    for (tenant, (got, want)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(got.0, want.0, "tenant {tenant} selection diverged");
        assert_eq!(got.1, want.1, "tenant {tenant} cost bits diverged");
        assert_eq!(got.2, want.2, "tenant {tenant} full_repricings diverged");
    }
    server.shutdown();
}

#[test]
fn tenant_errors_are_typed() {
    let server = Server::start(("127.0.0.1", 0), ServerConfig::default()).expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");

    let resp = client
        .call(&Request::GetSelection { tenant: 99 })
        .expect("call");
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::UnknownTenant,
                ..
            }
        ),
        "got {resp:?}"
    );

    let fx = fixture(9, 2, 4);
    let create = Request::CreateTenant {
        tenant: 7,
        pool: convert::pool_to_wire(&fx.pool),
        options: wire_options(&options(8, 4)),
    };
    assert!(matches!(
        client.call(&create).expect("create"),
        Response::TenantCreated { tenant: 7 }
    ));
    let resp = client.call(&create).expect("duplicate create");
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::TenantExists,
                ..
            }
        ),
        "got {resp:?}"
    );

    // A structurally valid frame whose payload violates a domain
    // invariant: zero decay cannot construct an advisor.
    let mut bad_options = wire_options(&options(8, 4));
    bad_options.decay = 0.0;
    let resp = client
        .call(&Request::CreateTenant {
            tenant: 8,
            pool: convert::pool_to_wire(&fx.pool),
            options: bad_options,
        })
        .expect("bad create");
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ),
        "got {resp:?}"
    );

    // Reweighting an ordinal that was never issued is a typed error, not
    // a daemon panic.
    let resp = client
        .call(&Request::ReweightAdmission {
            tenant: 7,
            admission: 1_000,
            weight: 2.0,
        })
        .expect("reweight unknown ordinal");
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ),
        "got {resp:?}"
    );
    server.shutdown();
}

#[test]
fn hostile_frames_get_typed_errors_and_the_connection_survives() {
    use std::io::{Read, Write};

    let server = Server::start(("127.0.0.1", 0), ServerConfig::default()).expect("start server");
    let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect raw");
    raw.set_nodelay(true).expect("nodelay");

    // Intact framing, garbage payload: version 1, request id 77, then an
    // unknown tag. The daemon must answer with a typed error on the same
    // connection.
    let mut frame = Vec::new();
    let payload = {
        let mut p = vec![1u8]; // version
        p.extend_from_slice(&77u64.to_le_bytes());
        p.push(250); // unknown request tag
        p
    };
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    raw.write_all(&frame).expect("write hostile frame");

    // Read the reply with the protocol reader to confirm it is a
    // well-formed typed error echoing the hostile frame's request id.
    let reply = pinum_protocol::read_response(&mut raw).expect("read reply");
    match reply {
        pinum_protocol::FrameIn::Msg { request_id, msg } => {
            assert_eq!(request_id, 77);
            assert!(
                matches!(
                    msg,
                    Response::Error {
                        code: ErrorCode::Malformed,
                        ..
                    }
                ),
                "got {msg:?}"
            );
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // Same connection must still serve healthy requests.
    let mut healthy = Vec::new();
    pinum_protocol::write_request(&mut healthy, 78, &Request::GetSelection { tenant: 1 })
        .expect("encode healthy");
    raw.write_all(&healthy).expect("write healthy");
    match pinum_protocol::read_response(&mut raw).expect("read healthy reply") {
        pinum_protocol::FrameIn::Msg { request_id, msg } => {
            assert_eq!(request_id, 78);
            assert!(matches!(
                msg,
                Response::Error {
                    code: ErrorCode::UnknownTenant,
                    ..
                }
            ));
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // An oversized length prefix is fatal by design: the daemon drops
    // the connection (no 64 MiB allocation, no panic) and keeps serving
    // new ones.
    let mut oversized = std::net::TcpStream::connect(server.addr()).expect("connect oversized");
    oversized
        .write_all(&u32::MAX.to_le_bytes())
        .expect("write hostile length");
    let mut buf = [0u8; 1];
    let n = oversized.read(&mut buf).expect("peer closes cleanly");
    assert_eq!(n, 0, "daemon should close an oversized-frame connection");

    let mut client = Client::connect(server.addr()).expect("fresh connection");
    let resp = client
        .call(&Request::GetSelection { tenant: 1 })
        .expect("daemon still alive");
    assert!(matches!(
        resp,
        Response::Error {
            code: ErrorCode::UnknownTenant,
            ..
        }
    ));
    server.shutdown();
}

/// Self-cleaning scratch directory (no external tempfile dependency).
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "pinum-daemon-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn restarted_daemon_resumes_bit_identically_over_the_wire() {
    let scratch = ScratchDir::new("warm-restart");
    let config = ServerConfig {
        shards: 2,
        budget: 1,
        snapshot_dir: Some(scratch.0.clone()),
        snapshot_every: 4,
    };
    let fx = fixture(9, 3, 10);
    let opts = options(12, 5);
    let expected = baseline(&fx, &opts);
    let tenant = 5u64;
    let split = fx.models.len() / 2;

    // First daemon: create the tenant and admit the first half of the
    // stream, then stop without any orderly per-tenant flush — the
    // journal plus the periodic snapshots must carry the state over.
    let server = Server::start(("127.0.0.1", 0), config.clone()).expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let resp = client
        .call(&Request::CreateTenant {
            tenant,
            pool: convert::pool_to_wire(&fx.pool),
            options: wire_options(&opts),
        })
        .expect("create tenant");
    assert!(matches!(resp, Response::TenantCreated { .. }));
    for (i, (cache, access)) in fx.models.iter().take(split).enumerate() {
        let (query, weight) = &fx.queries[i];
        let templates = query_templates(query);
        let resp = client
            .call(&Request::AdmitQuery {
                tenant,
                admission: wire_admission(cache, access, *weight, &templates),
            })
            .expect("admit");
        assert!(matches!(resp, Response::Admitted { .. }));
        if i % 4 == 3 {
            let resp = client
                .call(&Request::ReweightAdmission {
                    tenant,
                    admission: i as u64,
                    weight: *weight * 1.5,
                })
                .expect("reweight");
            assert!(matches!(resp, Response::Reweighted { applied: true, .. }));
        }
    }
    // The explicit snapshot request answers with the journal position.
    let resp = client
        .call(&Request::SnapshotNow { tenant })
        .expect("snapshot now");
    let Response::SnapshotTaken { log_seq } = resp else {
        panic!("unexpected snapshot reply: {resp:?}");
    };
    let resp = client
        .call(&Request::TenantEpoch { tenant })
        .expect("tenant epoch");
    assert!(
        matches!(
            resp,
            Response::Epoch {
                durable: true,
                log_seq: l,
                snapshot_seq: Some(s),
                ..
            } if l == log_seq && s == log_seq
        ),
        "got {resp:?}"
    );
    drop(client);
    server.shutdown();

    // Second daemon on the same directory: the tenant must already be
    // there (no CreateTenant) and finish the stream bit-identically.
    let server = Server::start(("127.0.0.1", 0), config).expect("restart server");
    let mut client = Client::connect(server.addr()).expect("reconnect");
    let resp = client
        .call(&Request::TenantEpoch { tenant })
        .expect("epoch after restart");
    assert!(
        matches!(resp, Response::Epoch { durable: true, log_seq: l, .. } if l >= log_seq),
        "got {resp:?}"
    );
    for (i, (cache, access)) in fx.models.iter().enumerate().skip(split) {
        let (query, weight) = &fx.queries[i];
        let templates = query_templates(query);
        let resp = client
            .call(&Request::AdmitQuery {
                tenant,
                admission: wire_admission(cache, access, *weight, &templates),
            })
            .expect("admit after restart");
        let Response::Admitted { results } = resp else {
            panic!("unexpected admit reply: {resp:?}");
        };
        assert_eq!(results[0].ordinal, i as u64, "ordinals continue seamlessly");
        if i % 4 == 3 {
            let resp = client
                .call(&Request::ReweightAdmission {
                    tenant,
                    admission: i as u64,
                    weight: *weight * 1.5,
                })
                .expect("reweight after restart");
            assert!(matches!(resp, Response::Reweighted { applied: true, .. }));
        }
    }
    let Response::Selection { ids, cost, .. } = client
        .call(&Request::GetSelection { tenant })
        .expect("selection")
    else {
        panic!("unexpected selection reply");
    };
    let Response::Stats { stats, .. } = client.call(&Request::GetStats { tenant }).expect("stats")
    else {
        panic!("unexpected stats reply");
    };
    assert_eq!(ids, expected.0, "selection diverged across restart");
    assert_eq!(cost.to_bits(), expected.1, "cost bits diverged");
    assert_eq!(
        stats.full_repricings, expected.2,
        "full re-pricings diverged"
    );
    drop(client);
    server.shutdown();
}

#[test]
fn batched_admissions_group_commit_and_surface_persist_counters() {
    let scratch = ScratchDir::new("group-commit");
    let config = ServerConfig {
        shards: 1,
        budget: 1,
        snapshot_dir: Some(scratch.0.clone()),
        snapshot_every: 0,
    };
    let server = Server::start(("127.0.0.1", 0), config).expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let fx = fixture(9, 3, 10);
    let opts = options(12, 5);
    let tenant = 3u64;

    // In-process baseline: the identical stream, one admission at a time.
    let mut advisor = OnlineAdvisor::new(fx.pool.clone(), opts);
    for (i, (cache, access)) in fx.models.iter().enumerate() {
        let (query, weight) = &fx.queries[i];
        let templates = query_templates(query);
        advisor.apply(
            AdmissionSpec::new(cache, access)
                .weight(*weight)
                .templates(&templates),
        );
    }

    let resp = client
        .call(&Request::CreateTenant {
            tenant,
            pool: convert::pool_to_wire(&fx.pool),
            options: wire_options(&opts),
        })
        .expect("create tenant");
    assert!(matches!(resp, Response::TenantCreated { .. }));

    // One AdmitBatch message is the deterministic coalescing case: the
    // shard journals the whole run through group-committed chunks.
    let admissions: Vec<WireAdmission> = fx
        .models
        .iter()
        .enumerate()
        .map(|(i, (cache, access))| {
            let (query, weight) = &fx.queries[i];
            wire_admission(cache, access, *weight, &query_templates(query))
        })
        .collect();
    let n = admissions.len() as u64;
    assert!(n > 1 && n <= 64, "fixture fits in one default policy chunk");
    let resp = client
        .call(&Request::AdmitBatch { tenant, admissions })
        .expect("admit batch");
    let Response::Admitted { results } = resp else {
        panic!("unexpected admit reply: {resp:?}");
    };
    assert_eq!(results.len() as u64, n);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.ordinal, i as u64, "batch preserves admission order");
    }

    // Batched admission is bit-identical to the serial baseline.
    let Response::Selection { ids, cost, .. } = client
        .call(&Request::GetSelection { tenant })
        .expect("selection")
    else {
        panic!("unexpected selection reply");
    };
    assert_eq!(
        ids,
        advisor
            .selection()
            .ids()
            .map(|i| i as u64)
            .collect::<Vec<_>>(),
        "batched selection diverged from the serial baseline"
    );
    assert_eq!(cost.to_bits(), advisor.current_cost().to_bits());

    // The persist counters surface over the wire: every admission was
    // journaled (write-ahead), but group commit amortized durability to
    // one fsync per policy chunk — far fewer fsyncs than admissions.
    let resp = client
        .call(&Request::TenantEpoch { tenant })
        .expect("tenant epoch");
    let Response::Epoch {
        durable,
        log_seq,
        appends,
        fsyncs,
        batches,
        max_batch_records,
        ..
    } = resp
    else {
        panic!("unexpected epoch reply: {resp:?}");
    };
    assert!(durable);
    // Seq 1 is the Create record; the batch holds the rest.
    assert_eq!(log_seq, 1 + n);
    assert_eq!(appends, 1 + n);
    assert_eq!(batches, 1);
    assert_eq!(max_batch_records, n);
    // Header + Create + one group commit for the whole batch.
    assert_eq!(fsyncs, 3);
    assert!(
        fsyncs < appends,
        "group commit must fsync fewer times than it appends ({fsyncs} vs {appends})"
    );

    drop(client);
    server.shutdown();
}

#[test]
fn pipelined_admissions_match_the_lockstep_client() {
    let server = Server::start(
        ("127.0.0.1", 0),
        ServerConfig {
            shards: 1,
            budget: 1,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let fx = fixture(9, 3, 10);
    let opts = options(12, 5);
    let tenant = 8u64;
    let expected = baseline(&fx, &opts);

    let resp = client
        .call(&Request::CreateTenant {
            tenant,
            pool: convert::pool_to_wire(&fx.pool),
            options: wire_options(&opts),
        })
        .expect("create tenant");
    assert!(matches!(resp, Response::TenantCreated { .. }));

    // Keep several AdmitQuery requests in flight at once — the shard may
    // coalesce whatever it finds queued, and the reweights (sent in
    // lockstep between windows, as they must observe the admissions
    // before them) interleave exactly as the serial client's would.
    let mut next = 0usize;
    while next < fx.models.len() {
        let window_end = (next + 4).min(fx.models.len());
        let reqs: Vec<Request> = (next..window_end)
            .map(|i| {
                let (cache, access) = &fx.models[i];
                let (query, weight) = &fx.queries[i];
                Request::AdmitQuery {
                    tenant,
                    admission: wire_admission(cache, access, *weight, &query_templates(query)),
                }
            })
            .collect();
        let resps = client.call_pipelined(&reqs).expect("pipelined admits");
        for (offset, resp) in resps.iter().enumerate() {
            let Response::Admitted { results } = resp else {
                panic!("unexpected admit reply: {resp:?}");
            };
            assert_eq!(results[0].ordinal, (next + offset) as u64);
        }
        for i in next..window_end {
            if i % 4 == 3 {
                let weight = fx.queries[i].1;
                let resp = client
                    .call(&Request::ReweightAdmission {
                        tenant,
                        admission: i as u64,
                        weight: weight * 1.5,
                    })
                    .expect("reweight");
                assert!(matches!(resp, Response::Reweighted { applied: true, .. }));
            }
        }
        next = window_end;
    }

    let Response::Selection { ids, cost, .. } = client
        .call(&Request::GetSelection { tenant })
        .expect("selection")
    else {
        panic!("unexpected selection reply");
    };
    let Response::Stats { stats, .. } = client.call(&Request::GetStats { tenant }).expect("stats")
    else {
        panic!("unexpected stats reply");
    };
    assert_eq!(ids, expected.0, "pipelined selection diverged");
    assert_eq!(cost.to_bits(), expected.1, "pipelined cost bits diverged");
    assert_eq!(
        stats.full_repricings, expected.2,
        "pipelined full re-pricings diverged"
    );
    drop(client);
    server.shutdown();
}

#[test]
fn snapshot_requests_on_a_volatile_daemon_are_typed_errors() {
    let server = Server::start(("127.0.0.1", 0), ServerConfig::default()).expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let fx = fixture(9, 2, 4);
    let opts = options(8, 4);
    let resp = client
        .call(&Request::CreateTenant {
            tenant: 1,
            pool: convert::pool_to_wire(&fx.pool),
            options: wire_options(&opts),
        })
        .expect("create tenant");
    assert!(matches!(resp, Response::TenantCreated { .. }));
    let resp = client
        .call(&Request::SnapshotNow { tenant: 1 })
        .expect("snapshot now");
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::PersistenceDisabled,
                ..
            }
        ),
        "got {resp:?}"
    );
    let resp = client
        .call(&Request::TenantEpoch { tenant: 1 })
        .expect("tenant epoch");
    assert_eq!(
        resp,
        Response::Epoch {
            durable: false,
            log_seq: 0,
            snapshot_seq: None,
            appends: 0,
            fsyncs: 0,
            batches: 0,
            max_batch_records: 0,
        }
    );
    server.shutdown();
}

#[test]
fn binary_smoke_boots_serves_and_shuts_down() {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_pinum-server"))
        .args(["--port", "0", "--shards", "2", "--budget", "1"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn daemon binary");
    let stdout = child.stdout.take().expect("stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("daemon prints its address")
        .expect("read banner");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let fx = fixture(9, 2, 4);
    let opts = options(8, 4);
    let (ids, cost_bits, _) = drive_tenant(addr.parse().expect("addr"), 3, &fx, &opts);
    let (want_ids, want_cost, _) = baseline(&fx, &opts);
    assert_eq!(ids, want_ids);
    assert_eq!(cost_bits, want_cost);

    let mut client = Client::connect(addr.as_str()).expect("connect for shutdown");
    let resp = client.call(&Request::Shutdown).expect("shutdown call");
    assert!(matches!(resp, Response::ShuttingDown));

    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exited with {status}");
}
