//! Aggregation/grouping costs (PostgreSQL `cost_agg`, `cost_group`).

use crate::{clamp_row_est, Cost, CostParams};

/// Aggregation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggStrategy {
    /// Input sorted on the grouping columns; streaming, non-blocking.
    Sorted,
    /// Hash table keyed on the grouping columns; blocking.
    Hashed,
    /// No grouping columns: a single result row (still blocking).
    Plain,
}

/// Cost of aggregating `input_rows` into `groups` groups over
/// `group_cols` grouping columns, with `agg_ops` aggregate transitions per
/// input row. Input cost not included.
pub fn cost_agg(
    p: &CostParams,
    strategy: AggStrategy,
    input_rows: f64,
    groups: f64,
    group_cols: u32,
    agg_ops: u32,
) -> Cost {
    let n = clamp_row_est(input_rows);
    let g = clamp_row_est(groups);
    let per_input = p.cpu_operator_cost * (group_cols.max(1) + agg_ops) as f64;
    let output = g * p.cpu_tuple_cost;
    match strategy {
        AggStrategy::Sorted => {
            // Streams: groups emerge as the sorted input advances.
            Cost::new(0.0, n * per_input + output)
        }
        AggStrategy::Hashed | AggStrategy::Plain => {
            // Must consume all input before emitting anything.
            let startup = n * per_input;
            Cost::new(startup, startup + output)
        }
    }
}

/// PostgreSQL's `estimate_num_groups` for independent columns: the product
/// of per-column distinct counts, clamped by the input cardinality.
pub fn estimate_num_groups(input_rows: f64, per_column_ndv: &[f64]) -> f64 {
    if per_column_ndv.is_empty() {
        return 1.0;
    }
    let product: f64 = per_column_ndv.iter().map(|d| d.max(1.0)).product();
    clamp_row_est(product.min(input_rows.max(1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn sorted_agg_streams() {
        let c = cost_agg(&p(), AggStrategy::Sorted, 10_000.0, 100.0, 1, 1);
        assert_eq!(c.startup, 0.0);
        assert!(c.total > 0.0);
    }

    #[test]
    fn hashed_agg_blocks() {
        let c = cost_agg(&p(), AggStrategy::Hashed, 10_000.0, 100.0, 1, 1);
        assert!(c.startup > 0.0);
        assert!(c.total > c.startup);
    }

    #[test]
    fn group_estimate_clamps_at_input() {
        assert_eq!(estimate_num_groups(1000.0, &[100.0, 100.0]), 1000.0);
        assert_eq!(estimate_num_groups(1_000_000.0, &[100.0, 10.0]), 1000.0);
        assert_eq!(estimate_num_groups(1000.0, &[]), 1.0);
    }

    #[test]
    fn more_group_cols_cost_more() {
        let one = cost_agg(&p(), AggStrategy::Hashed, 10_000.0, 50.0, 1, 0);
        let three = cost_agg(&p(), AggStrategy::Hashed, 10_000.0, 50.0, 3, 0);
        assert!(three.total > one.total);
    }
}
