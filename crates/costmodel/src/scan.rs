//! Scan costs: sequential scan, (plain and index-only) B-tree index scan.

use crate::{clamp_row_est, log2_ceil, Cost, CostParams};

/// Cost of a full sequential scan over `pages` heap pages producing
/// `rows` tuples and evaluating `qual_ops` operator calls per tuple
/// (PostgreSQL `cost_seqscan`).
pub fn cost_seqscan(p: &CostParams, pages: u64, rows: f64, qual_ops: u32) -> Cost {
    let io = pages as f64 * p.seq_page_cost;
    let cpu = rows * (p.cpu_tuple_cost + qual_ops as f64 * p.cpu_operator_cost);
    Cost::run_only(io + cpu)
}

/// Inputs of [`cost_index_scan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexScanInput {
    /// Leaf pages of the index.
    pub index_leaf_pages: u64,
    /// Tree height (descents); what-if and materialized twins share it.
    pub index_height: u32,
    /// Index tuples (= table rows).
    pub index_rows: f64,
    /// Heap pages of the underlying table.
    pub heap_pages: u64,
    /// Heap rows of the underlying table.
    pub heap_rows: f64,
    /// Fraction of the index actually scanned (selectivity of the *index
    /// conditions*, i.e. predicates on a key prefix).
    pub index_selectivity: f64,
    /// Leading-key correlation with heap order, in `[-1, 1]`.
    pub correlation: f64,
    /// Operator calls per visited tuple for non-index filter quals.
    pub filter_ops: u32,
    /// If true, the index covers every referenced column and the heap is
    /// never visited (index-only scan).
    pub index_only: bool,
    /// Number of outer repetitions when used as a parameterized inner of a
    /// nested loop (`loop_count` in PostgreSQL); amortizes cache effects.
    pub loop_count: f64,
}

impl Default for IndexScanInput {
    fn default() -> Self {
        Self {
            index_leaf_pages: 1,
            index_height: 0,
            index_rows: 1.0,
            heap_pages: 1,
            heap_rows: 1.0,
            index_selectivity: 1.0,
            correlation: 0.0,
            filter_ops: 0,
            index_only: false,
            loop_count: 1.0,
        }
    }
}

/// Mackert–Lohman page-fetch estimate, PostgreSQL's `index_pages_fetched`.
///
/// Estimates how many distinct heap pages `tuples` random probes touch in a
/// table of `pages` pages given an `effective_cache` of pages.
pub fn index_pages_fetched(tuples: f64, pages: u64, effective_cache: f64) -> f64 {
    let t = (pages.max(1)) as f64;
    let n = tuples.max(0.0);
    if n <= 0.0 {
        return 0.0;
    }
    let b = effective_cache.max(1.0);
    let pages_fetched = if t <= b {
        let pf = (2.0 * t * n) / (2.0 * t + n);
        pf.min(t)
    } else {
        let lim = (2.0 * t * b) / (2.0 * t - b);
        if n <= lim {
            (2.0 * t * n) / (2.0 * t + n)
        } else {
            b + (n - lim) * (t - b) / t
        }
    };
    pages_fetched.ceil()
}

/// B-tree index scan cost (PostgreSQL `cost_index` + `btcostestimate`).
///
/// Returns the *per-execution* cost when `loop_count > 1` (the caller
/// multiplies by the loop count), matching PostgreSQL's convention for
/// parameterized inner paths.
pub fn cost_index_scan(p: &CostParams, input: &IndexScanInput) -> Cost {
    let sel = input.index_selectivity.clamp(0.0, 1.0);
    let index_tuples = clamp_row_est(sel * input.index_rows);
    let tuples_fetched = clamp_row_est(sel * input.heap_rows);
    let index_pages = ((sel * input.index_leaf_pages as f64).ceil()).max(1.0);

    // Descent: one comparison per level plus the traditional 50x fudge per
    // page descended (PostgreSQL 9.x btcostestimate).
    let descent = log2_ceil(input.index_rows) * p.cpu_operator_cost
        + (input.index_height as f64 + 1.0) * 50.0 * p.cpu_operator_cost;

    // Index page I/O: leaf pages are walked via sibling pointers; PostgreSQL
    // charges them at random_page_cost, amortized across loops.
    let index_io = if input.loop_count > 1.0 {
        let pages = index_pages_fetched(
            index_pages * input.loop_count,
            input.index_leaf_pages,
            p.effective_cache_pages,
        );
        pages * p.random_page_cost / input.loop_count
    } else {
        index_pages * p.random_page_cost
    };

    let cpu_index = index_tuples * p.cpu_index_tuple_cost;

    // Heap I/O.
    let heap_io = if input.index_only {
        0.0
    } else if input.loop_count > 1.0 {
        // Repeated executions share cache; use Mackert-Lohman over all loops
        // then amortize (PostgreSQL's exact approach).
        let pages = index_pages_fetched(
            tuples_fetched * input.loop_count,
            input.heap_pages,
            p.effective_cache_pages,
        );
        pages * p.random_page_cost / input.loop_count
    } else {
        let max_pages =
            index_pages_fetched(tuples_fetched, input.heap_pages, p.effective_cache_pages);
        let max_io = max_pages * p.random_page_cost;
        // Perfectly correlated: the needed fraction of the heap, read almost
        // sequentially (first page random, rest sequential).
        let min_pages = (sel * input.heap_pages as f64).ceil().max(1.0);
        let min_io = p.random_page_cost + (min_pages - 1.0) * p.seq_page_cost;
        let c2 = input.correlation * input.correlation;
        // Correlation can only make the scan cheaper; if the sequential
        // estimate exceeds the Mackert-Lohman bound, keep the bound.
        max_io + c2 * (min_io - max_io).min(0.0)
    };

    let cpu_heap =
        tuples_fetched * (p.cpu_tuple_cost + input.filter_ops as f64 * p.cpu_operator_cost);

    Cost::new(descent, descent + index_io + cpu_index + heap_io + cpu_heap)
}

/// Bitmap heap scan cost (PostgreSQL `cost_bitmap_heap_scan` +
/// `cost_bitmap_tree_node`): scan the index to build a TID bitmap, then
/// fetch the qualifying heap pages in physical order. Order-destroying but
/// far cheaper than a plain index scan at medium selectivities, because
/// each heap page is visited once and quasi-sequentially.
pub fn cost_bitmap_heap_scan(p: &CostParams, input: &IndexScanInput) -> Cost {
    let sel = input.index_selectivity.clamp(0.0, 1.0);
    let index_tuples = clamp_row_est(sel * input.index_rows);
    let tuples_fetched = clamp_row_est(sel * input.heap_rows);
    let index_pages = ((sel * input.index_leaf_pages as f64).ceil()).max(1.0);
    let t = input.heap_pages.max(1) as f64;

    // Build the bitmap: walk the index portion.
    let descent = log2_ceil(input.index_rows) * p.cpu_operator_cost
        + (input.index_height as f64 + 1.0) * 50.0 * p.cpu_operator_cost;
    let index_io = index_pages * p.random_page_cost;
    let cpu_index = index_tuples * p.cpu_index_tuple_cost;
    let build = descent + index_io + cpu_index;

    // Heap fetch: pages in physical order; the per-page cost interpolates
    // from random toward sequential as the visited fraction grows.
    let pages_fetched =
        index_pages_fetched(tuples_fetched, input.heap_pages, p.effective_cache_pages)
            .min(t)
            .max(1.0);
    let cost_per_page = if pages_fetched >= 2.0 {
        p.random_page_cost - (p.random_page_cost - p.seq_page_cost) * (pages_fetched / t).sqrt()
    } else {
        p.random_page_cost
    };
    let heap_io = pages_fetched * cost_per_page;
    // Every fetched tuple is rechecked against the quals.
    let cpu_heap =
        tuples_fetched * (p.cpu_tuple_cost + (input.filter_ops as f64 + 1.0) * p.cpu_operator_cost);

    // The whole bitmap must exist before the first heap page is read.
    Cost::new(build, build + heap_io + cpu_heap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn seqscan_linear_in_pages_and_rows() {
        let a = cost_seqscan(&p(), 100, 1000.0, 1);
        let b = cost_seqscan(&p(), 200, 2000.0, 1);
        assert!((b.total - 2.0 * a.total).abs() < 1e-9);
        assert_eq!(a.startup, 0.0);
    }

    #[test]
    fn mackert_lohman_caps_at_table_size() {
        // Huge number of probes cannot touch more pages than exist (within
        // cache).
        let pf = index_pages_fetched(1e9, 1000, 524_288.0);
        assert_eq!(pf, 1000.0);
        // Few probes touch about that many pages.
        let pf = index_pages_fetched(3.0, 100_000, 524_288.0);
        assert!((1.0..=3.0).contains(&pf));
        assert_eq!(index_pages_fetched(0.0, 1000, 1e6), 0.0);
    }

    #[test]
    fn correlated_scan_is_cheaper() {
        let base = IndexScanInput {
            index_leaf_pages: 5_000,
            index_height: 2,
            index_rows: 1_000_000.0,
            heap_pages: 50_000,
            heap_rows: 1_000_000.0,
            index_selectivity: 0.05,
            correlation: 0.0,
            ..Default::default()
        };
        let uncorr = cost_index_scan(&p(), &base);
        let corr = cost_index_scan(
            &p(),
            &IndexScanInput {
                correlation: 1.0,
                ..base
            },
        );
        assert!(corr.total < uncorr.total);
    }

    #[test]
    fn index_only_scan_is_cheaper_than_heap_fetching() {
        let base = IndexScanInput {
            index_leaf_pages: 5_000,
            index_height: 2,
            index_rows: 1_000_000.0,
            heap_pages: 50_000,
            heap_rows: 1_000_000.0,
            index_selectivity: 0.10,
            ..Default::default()
        };
        let plain = cost_index_scan(&p(), &base);
        let only = cost_index_scan(
            &p(),
            &IndexScanInput {
                index_only: true,
                ..base
            },
        );
        assert!(only.total < plain.total);
    }

    #[test]
    fn selective_scan_beats_seqscan_unselective_does_not() {
        let heap_pages = 50_000;
        let rows = 1_000_000.0;
        let seq = cost_seqscan(&p(), heap_pages, rows, 1);
        let narrow = cost_index_scan(
            &p(),
            &IndexScanInput {
                index_leaf_pages: 5_000,
                index_height: 2,
                index_rows: rows,
                heap_pages,
                heap_rows: rows,
                index_selectivity: 0.0001,
                ..Default::default()
            },
        );
        let wide = cost_index_scan(
            &p(),
            &IndexScanInput {
                index_leaf_pages: 5_000,
                index_height: 2,
                index_rows: rows,
                heap_pages,
                heap_rows: rows,
                index_selectivity: 0.9,
                ..Default::default()
            },
        );
        assert!(narrow.total < seq.total, "selective index scan should win");
        assert!(wide.total > seq.total, "unselective index scan should lose");
    }

    #[test]
    fn loop_count_amortizes_io() {
        let base = IndexScanInput {
            index_leaf_pages: 5_000,
            index_height: 2,
            index_rows: 1_000_000.0,
            heap_pages: 50_000,
            heap_rows: 1_000_000.0,
            index_selectivity: 0.001,
            ..Default::default()
        };
        let single = cost_index_scan(&p(), &base);
        let looped = cost_index_scan(
            &p(),
            &IndexScanInput {
                loop_count: 1000.0,
                ..base
            },
        );
        assert!(looped.total <= single.total);
    }
}

#[cfg(test)]
mod bitmap_tests {
    use super::*;

    fn p() -> CostParams {
        CostParams::default()
    }

    /// The paper's workload shape: 1 % selectivity on a large table.
    fn one_percent() -> IndexScanInput {
        IndexScanInput {
            index_leaf_pages: 2_500,
            index_height: 2,
            index_rows: 1_000_000.0,
            heap_pages: 6_400,
            heap_rows: 1_000_000.0,
            index_selectivity: 0.01,
            ..Default::default()
        }
    }

    #[test]
    fn bitmap_beats_plain_index_scan_at_medium_selectivity() {
        let input = one_percent();
        let plain = cost_index_scan(&p(), &input);
        let bitmap = cost_bitmap_heap_scan(&p(), &input);
        assert!(
            bitmap.total < plain.total,
            "bitmap {bitmap:?} should beat plain {plain:?} at 1 %"
        );
    }

    #[test]
    fn bitmap_beats_seqscan_at_one_percent() {
        let input = one_percent();
        let seq = cost_seqscan(&p(), input.heap_pages, input.heap_rows, 1);
        let bitmap = cost_bitmap_heap_scan(&p(), &input);
        assert!(
            bitmap.total < seq.total,
            "bitmap {bitmap:?} should beat seqscan {seq:?}"
        );
    }

    #[test]
    fn bitmap_blocks_until_built() {
        let b = cost_bitmap_heap_scan(&p(), &one_percent());
        assert!(b.startup > 0.0);
        assert!(b.total > b.startup);
    }

    #[test]
    fn bitmap_degrades_gracefully_to_full_scan() {
        let mut input = one_percent();
        input.index_selectivity = 1.0;
        let full = cost_bitmap_heap_scan(&p(), &input);
        let seq = cost_seqscan(&p(), input.heap_pages, input.heap_rows, 1);
        // A full-table bitmap scan should not be wildly cheaper than the
        // sequential scan (it reads every page plus the whole index).
        assert!(full.total > seq.total * 0.8);
    }
}
