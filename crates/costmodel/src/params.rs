//! Cost parameters: PostgreSQL's planner GUCs with their default values.

/// Planner cost constants (PostgreSQL defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Cost of a sequentially fetched page (`seq_page_cost`).
    pub seq_page_cost: f64,
    /// Cost of a randomly fetched page (`random_page_cost`).
    pub random_page_cost: f64,
    /// CPU cost of processing one tuple (`cpu_tuple_cost`).
    pub cpu_tuple_cost: f64,
    /// CPU cost of processing one index entry (`cpu_index_tuple_cost`).
    pub cpu_index_tuple_cost: f64,
    /// CPU cost of one operator/function call (`cpu_operator_cost`).
    pub cpu_operator_cost: f64,
    /// Assumed size of the OS/shared cache, in pages
    /// (`effective_cache_size`, default 4 GB worth of 8 kB pages).
    pub effective_cache_pages: f64,
    /// Memory available to a sort or hash, in kB (`work_mem`).
    pub work_mem_kb: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
            effective_cache_pages: 16_384.0, // 128 MB, the 8.3-era default
            work_mem_kb: 1_024,              // 1 MB, the PostgreSQL 8.3 default
        }
    }
}

impl CostParams {
    /// work_mem in bytes.
    pub fn work_mem_bytes(&self) -> f64 {
        self.work_mem_kb as f64 * 1024.0
    }

    /// Sort comparison cost (PostgreSQL uses `2 * cpu_operator_cost`).
    pub fn comparison_cost(&self) -> f64 {
        2.0 * self.cpu_operator_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_postgresql() {
        let p = CostParams::default();
        assert_eq!(p.seq_page_cost, 1.0);
        assert_eq!(p.random_page_cost, 4.0);
        assert_eq!(p.cpu_tuple_cost, 0.01);
        assert_eq!(p.cpu_index_tuple_cost, 0.005);
        assert_eq!(p.cpu_operator_cost, 0.0025);
        assert_eq!(p.comparison_cost(), 0.005);
        assert_eq!(p.work_mem_bytes(), 1_048_576.0);
    }
}
