//! # pinum-cost
//!
//! A PostgreSQL-style cost model for the PINUM reproduction: the formulas
//! follow `optimizer/path/costsize.c` (v8.3 lineage, with index-only scans
//! modeled as in later versions — see DESIGN.md substitution table).
//!
//! Costs are expressed in the usual abstract units where one sequential page
//! fetch costs `seq_page_cost = 1.0`. Every function here is **pure**: it
//! maps statistics to a [`Cost`], which is what lets the INUM cache replay
//! plans as linear functions of leaf access costs.

pub mod agg;
pub mod join;
pub mod params;
pub mod scan;
pub mod sort;

pub use params::CostParams;

use std::ops::{Add, AddAssign};

/// A PostgreSQL-style cost pair.
///
/// `startup` is the cost before the first tuple can be produced; `total` is
/// the cost to produce all tuples. `run = total - startup`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    pub startup: f64,
    pub total: f64,
}

impl Cost {
    pub const ZERO: Cost = Cost {
        startup: 0.0,
        total: 0.0,
    };

    pub fn new(startup: f64, total: f64) -> Self {
        debug_assert!(startup.is_finite() && total.is_finite());
        debug_assert!(total + 1e-9 >= startup, "total {total} < startup {startup}");
        Self { startup, total }
    }

    /// Cost with no startup component.
    pub fn run_only(total: f64) -> Self {
        Self::new(0.0, total)
    }

    /// The post-startup (per-run) portion.
    pub fn run(&self) -> f64 {
        (self.total - self.startup).max(0.0)
    }

    /// Adds a pure run cost.
    pub fn plus_run(self, run: f64) -> Self {
        Self::new(self.startup, self.total + run)
    }

    /// Adds a startup cost (which also delays total).
    pub fn plus_startup(self, startup: f64) -> Self {
        Self::new(self.startup + startup, self.total + startup)
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost::new(self.startup + rhs.startup, self.total + rhs.total)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

/// PostgreSQL's `clamp_row_est`: row estimates are at least one and rounded.
pub fn clamp_row_est(rows: f64) -> f64 {
    if rows <= 1.0 {
        1.0
    } else {
        rows.round()
    }
}

/// `ceil(log2(n))` guarded for small inputs, used by sort and B-tree descent
/// costs.
pub fn log2_ceil(n: f64) -> f64 {
    if n <= 2.0 {
        1.0
    } else {
        n.log2().ceil()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_algebra() {
        let a = Cost::new(1.0, 5.0);
        let b = Cost::new(0.5, 2.0);
        let c = a + b;
        assert_eq!(c, Cost::new(1.5, 7.0));
        assert!((a.run() - 4.0).abs() < 1e-12);
        assert_eq!(a.plus_run(1.0), Cost::new(1.0, 6.0));
        assert_eq!(a.plus_startup(1.0), Cost::new(2.0, 6.0));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn total_below_startup_asserts() {
        let _ = Cost::new(5.0, 1.0);
    }

    #[test]
    fn clamp_rows() {
        assert_eq!(clamp_row_est(-3.0), 1.0);
        assert_eq!(clamp_row_est(0.2), 1.0);
        assert_eq!(clamp_row_est(10.4), 10.0);
    }

    #[test]
    fn log2_ceil_small_values() {
        assert_eq!(log2_ceil(0.0), 1.0);
        assert_eq!(log2_ceil(2.0), 1.0);
        assert_eq!(log2_ceil(8.0), 3.0);
        assert_eq!(log2_ceil(9.0), 4.0);
    }
}
