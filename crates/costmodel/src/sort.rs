//! Sort and materialize costs (PostgreSQL `cost_sort`, `cost_material`).

use crate::{clamp_row_est, Cost, CostParams};

/// Cost of sorting `rows` tuples of `width` bytes.
///
/// In-memory sorts charge `comparison_cost * N * log2(N)` startup; sorts
/// that spill charge additionally for writing and re-reading runs, with the
/// usual single-merge-pass approximation for realistic work_mem sizes.
/// The input cost is *not* included.
pub fn cost_sort(p: &CostParams, rows: f64, width: u32) -> Cost {
    let n = clamp_row_est(rows);
    let bytes = n * width.max(1) as f64;
    let cmp = p.comparison_cost();
    let mut startup = cmp * n * crate::log2_ceil(n).max(1.0);
    if bytes > p.work_mem_bytes() {
        // External sort: write + read every page, log(npages) merge passes
        // collapsed to ~1.5 as in practice for sane work_mem.
        let pages = (bytes / 8192.0).ceil();
        let merge_passes = 1.5;
        startup += pages * (p.seq_page_cost * 0.75 + p.seq_page_cost * 0.75) * merge_passes;
    }
    // Emitting tuples costs cpu_operator_cost each (PostgreSQL convention).
    let run = p.cpu_operator_cost * n;
    Cost::new(startup, startup + run)
}

/// Cost of materializing `rows` tuples of `width` bytes into a tuplestore
/// (PostgreSQL `cost_material`): charged on top of the input's total cost.
pub fn cost_material(p: &CostParams, rows: f64, width: u32) -> Cost {
    let n = clamp_row_est(rows);
    let bytes = n * width.max(1) as f64;
    let mut run = 2.0 * p.cpu_operator_cost * n;
    if bytes > p.work_mem_bytes() {
        let pages = (bytes / 8192.0).ceil();
        run += pages * p.seq_page_cost;
    }
    Cost::run_only(run)
}

/// Cost of *rescanning* a materialized input of `rows` tuples of `width`
/// bytes — much cheaper than recomputing it.
pub fn cost_rescan_material(p: &CostParams, rows: f64, width: u32) -> Cost {
    let n = clamp_row_est(rows);
    let bytes = n * width.max(1) as f64;
    let mut run = p.cpu_operator_cost * n;
    if bytes > p.work_mem_bytes() {
        let pages = (bytes / 8192.0).ceil();
        run += pages * p.seq_page_cost;
    }
    Cost::run_only(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn sort_is_superlinear() {
        let small = cost_sort(&p(), 1_000.0, 16);
        let big = cost_sort(&p(), 10_000.0, 16);
        assert!(big.total > 10.0 * small.total * 0.9);
        assert!(small.startup > 0.0, "sorts block until done");
    }

    #[test]
    fn spilling_sorts_cost_more() {
        let pp = p();
        // 1M rows * 100B = 100 MB >> 4 MB work_mem.
        let fits = cost_sort(&pp, 10_000.0, 100);
        let spills = cost_sort(&pp, 1_000_000.0, 100);
        let per_row_fit = fits.total / 10_000.0;
        let per_row_spill = spills.total / 1_000_000.0;
        assert!(per_row_spill > per_row_fit);
    }

    #[test]
    fn material_rescan_cheaper_than_build() {
        let pp = p();
        let build = cost_material(&pp, 100_000.0, 32);
        let rescan = cost_rescan_material(&pp, 100_000.0, 32);
        assert!(rescan.total < build.total);
    }
}
