//! Join costs: nested loop, merge join, hash join (PostgreSQL
//! `cost_nestloop`, `cost_mergejoin`, `cost_hashjoin`).
//!
//! All three take the child costs as inputs and add the join's own work, so
//! the total plan cost stays a sum of per-node self-costs — the property
//! INUM's linearity postulate rests on (paper §II, observation 1).

use crate::{clamp_row_est, Cost, CostParams};

/// Inputs shared by the join cost functions.
#[derive(Debug, Clone, Copy)]
pub struct JoinInput {
    pub outer_cost: Cost,
    pub outer_rows: f64,
    pub inner_cost: Cost,
    pub inner_rows: f64,
    /// Estimated output rows.
    pub output_rows: f64,
    /// Operator calls per output row for join quals evaluated at the join.
    pub qual_ops: u32,
}

/// Nested-loop join: the inner is re-executed once per outer row.
///
/// `inner_rescan` is the cost of the 2nd..Nth executions (equals
/// `inner_cost` for plain scans, is much cheaper for materialized inners,
/// and is the amortized parameterized cost for inner index scans).
pub fn cost_nestloop(p: &CostParams, j: &JoinInput, inner_rescan: Cost) -> Cost {
    let outer = clamp_row_est(j.outer_rows);
    let startup = j.outer_cost.startup + j.inner_cost.startup;
    let mut run = j.outer_cost.run() + j.inner_cost.run();
    if outer > 1.0 {
        run += (outer - 1.0) * inner_rescan.total;
    }
    // Per-tuple CPU: each outer/inner pairing inspected costs one tuple
    // charge; we approximate inspected pairs by outer * inner-rows-per-scan.
    let pairs = outer * clamp_row_est(j.inner_rows);
    run += pairs * p.cpu_tuple_cost * 0.5;
    run +=
        clamp_row_est(j.output_rows) * (p.cpu_tuple_cost + j.qual_ops as f64 * p.cpu_operator_cost);
    Cost::new(startup, startup + run)
}

/// Merge join over inputs already sorted on the join keys (the planner adds
/// explicit sorts beneath when needed).
pub fn cost_mergejoin(p: &CostParams, j: &JoinInput) -> Cost {
    let outer = clamp_row_est(j.outer_rows);
    let inner = clamp_row_est(j.inner_rows);
    // Both inputs must deliver their first tuple before merging starts.
    let startup = j.outer_cost.startup + j.inner_cost.startup;
    let mut run = j.outer_cost.run() + j.inner_cost.run();
    // One comparison per advanced tuple on either side.
    run += (outer + inner) * p.cpu_operator_cost;
    run +=
        clamp_row_est(j.output_rows) * (p.cpu_tuple_cost + j.qual_ops as f64 * p.cpu_operator_cost);
    Cost::new(startup, startup + run)
}

/// Hash join: build the inner side, probe with the outer.
pub fn cost_hashjoin(p: &CostParams, j: &JoinInput, inner_width: u32) -> Cost {
    let outer = clamp_row_est(j.outer_rows);
    let inner = clamp_row_est(j.inner_rows);
    // Build side: hash every inner tuple (blocking).
    let build_cpu = inner * (p.cpu_operator_cost + p.cpu_tuple_cost);
    let startup = j.inner_cost.total + build_cpu + j.outer_cost.startup;
    let mut run = j.outer_cost.run();
    // Probe: hash each outer tuple; assume a well-sized table (one bucket
    // inspection on average plus qual evaluation on matches).
    run += outer * p.cpu_operator_cost;
    // Batching: if the inner does not fit in work_mem, both sides spill.
    let inner_bytes = inner * inner_width.max(1) as f64;
    if inner_bytes > p.work_mem_bytes() {
        let inner_pages = (inner_bytes / 8192.0).ceil();
        // Outer width unknown here; charge proportionally to rows with a
        // nominal 32-byte tuple, written once and read once.
        let outer_pages = (outer * 32.0 / 8192.0).ceil();
        run += 2.0 * (inner_pages + outer_pages) * p.seq_page_cost;
    }
    run +=
        clamp_row_est(j.output_rows) * (p.cpu_tuple_cost + j.qual_ops as f64 * p.cpu_operator_cost);
    Cost::new(startup, startup + run)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CostParams {
        CostParams::default()
    }

    fn j(outer_rows: f64, inner_rows: f64) -> JoinInput {
        JoinInput {
            outer_cost: Cost::run_only(outer_rows * 0.02),
            outer_rows,
            inner_cost: Cost::run_only(inner_rows * 0.02),
            inner_rows,
            output_rows: outer_rows.max(inner_rows),
            qual_ops: 1,
        }
    }

    #[test]
    fn nestloop_scales_with_outer_times_inner() {
        let pp = p();
        let small = j(10.0, 1000.0);
        let big = j(1000.0, 1000.0);
        let cs = cost_nestloop(&pp, &small, small.inner_cost);
        let cb = cost_nestloop(&pp, &big, big.inner_cost);
        assert!(cb.total > 50.0 * cs.total);
    }

    #[test]
    fn nestloop_with_cheap_rescan_wins() {
        let pp = p();
        let input = j(1000.0, 1000.0);
        let expensive = cost_nestloop(&pp, &input, input.inner_cost);
        let cheap = cost_nestloop(&pp, &input, Cost::run_only(0.5));
        assert!(cheap.total < expensive.total);
    }

    #[test]
    fn hashjoin_beats_nestloop_on_large_unindexed_inputs() {
        let pp = p();
        let input = j(100_000.0, 100_000.0);
        let nl = cost_nestloop(&pp, &input, input.inner_cost);
        let hj = cost_hashjoin(&pp, &input, 16);
        assert!(hj.total < nl.total);
    }

    #[test]
    fn mergejoin_linear_in_inputs() {
        let pp = p();
        let a = cost_mergejoin(&pp, &j(1_000.0, 1_000.0));
        let b = cost_mergejoin(&pp, &j(10_000.0, 10_000.0));
        assert!(b.total < 15.0 * a.total, "merge join must stay near-linear");
    }

    #[test]
    fn hashjoin_startup_includes_build() {
        let pp = p();
        let input = j(10.0, 100_000.0);
        let hj = cost_hashjoin(&pp, &input, 16);
        assert!(hj.startup >= input.inner_cost.total);
    }

    #[test]
    fn hashjoin_spill_costs_io() {
        let pp = p();
        let small = cost_hashjoin(&pp, &j(1000.0, 1000.0), 16);
        let huge = cost_hashjoin(&pp, &j(1000.0, 10_000_000.0), 64);
        // Spilling adds IO beyond the linear CPU growth.
        let linear_scale = 10_000.0 * (64.0 / 16.0);
        assert!(huge.total > small.total);
        let _ = linear_scale;
    }
}
