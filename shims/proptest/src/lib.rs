//! Minimal, dependency-free stand-in for the `proptest` crate (the build
//! environment has no access to crates.io).
//!
//! Supported surface — exactly what the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `fn name(arg in strategy, ...) { body }`
//!   test cases and an optional leading `#![proptest_config(...)]`;
//! * [`Strategy`] implemented for integer/float ranges and
//!   `prop::collection::vec`;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the sampled inputs printed, which is enough to reproduce (generation is
//! deterministic per test name and case index).

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seed derived from the test's name so every test has its own stream but
/// reruns reproduce it exactly.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator (vastly simplified `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// `prop::collection::vec` etc.
pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Length specifiers `vec` accepts: exact, `a..b`, `a..=b`.
        pub trait SizeRange {
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for core::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                Strategy::sample(self, rng)
            }
        }

        impl SizeRange for core::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                Strategy::sample(self, rng)
            }
        }

        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Per-test configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Expands each `fn name(arg in strategy, ...) { body }` into a `#[test]`
/// that samples the strategies `config.cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&$arg, &mut rng);)+
                let run = || {
                    $(let $arg = ::core::clone::Clone::clone(&$arg);)+
                    $body
                };
                if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)).is_err() {
                    panic!(
                        "proptest case {case} failed for {}: inputs {:?}",
                        stringify!($name),
                        ($(&$arg,)+)
                    );
                }
            }
        }
        $crate::__proptest_impl!($config; $($rest)*);
    };
}
