//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this in-tree shim
//! provides exactly the API surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], and [`seq::SliceRandom`]'s `choose` /
//! `shuffle`. The generator is xoshiro256++ seeded through SplitMix64 —
//! high-quality, fast, and fully deterministic, which is all the synthetic
//! workload generators and randomized tests need. It makes no attempt to
//! reproduce the upstream crate's value streams.

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The core generator: uniform over all `u64` values.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

/// A `u64` mapped to `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types [`Rng::gen_range`] accepts (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3..=5usize);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((0.28..0.32).contains(&frac), "frac {frac}");
    }

    #[test]
    fn uniformity_over_small_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "shuffle should move something");
    }
}
