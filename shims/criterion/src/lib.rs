//! Minimal, dependency-free stand-in for the `criterion` benchmark
//! harness (the build environment has no access to crates.io).
//!
//! It supports the subset the workspace's benches use — benchmark groups,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`, and
//! `Bencher::iter` — measures wall-clock time per iteration, and prints a
//! one-line min/median/mean summary per benchmark. No statistics beyond
//! that: the point is that `cargo bench` runs and reports comparable
//! numbers, not confidence intervals.

use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 30,
        }
    }
}

/// A named benchmark id (`BenchmarkId::new("function", parameter)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, &id.into_benchmark_id());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&self.name, &id.into_benchmark_id());
        self
    }

    pub fn finish(self) {}
}

/// Runs and times the benchmarked routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration, then `sample_size` timed iterations.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples");
            return;
        }
        self.samples.sort_unstable();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{group}/{id}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples)",
            self.samples.len()
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
