//! Cross-crate integration tests: optimizer ↔ INUM cache ↔ advisor on the
//! paper's workload (scaled-down statistics, full pipeline).

use pinum::advisor::candidates::generate_candidates;
use pinum::advisor::tool::{advise, AdvisorOptions, CostOracle};
use pinum::catalog::Configuration;
use pinum::core::access_costs::{collect_inum, collect_pinum};
use pinum::core::builder::{build_cache_inum, build_cache_pinum, BuilderOptions};
use pinum::core::{CacheCostModel, Selection};
use pinum::optimizer::{Optimizer, OptimizerOptions};
use pinum::workload::star::{StarSchema, StarWorkload};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn fixture() -> (StarSchema, StarWorkload) {
    let schema = StarSchema::generate(42, 0.05);
    let workload = StarWorkload::generate(&schema, 7, 10);
    (schema, workload)
}

/// The headline invariant: a PINUM cache built from two optimizer calls
/// prices configurations like a fresh optimizer call would, across random
/// atomic configurations.
#[test]
fn pinum_cache_tracks_the_optimizer() {
    let (schema, workload) = fixture();
    let opt = Optimizer::new(&schema.catalog);
    let pool = generate_candidates(&schema.catalog, &workload.queries);
    let mut rng = StdRng::seed_from_u64(1);
    for q in workload.queries.iter().step_by(3) {
        let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
        assert!(built.stats.optimizer_calls <= 2);
        let (access, astats) = collect_pinum(&opt, q, &pool);
        assert_eq!(astats.optimizer_calls, 1);
        let model = CacheCostModel::new(&built.cache, &access);
        let per_rel: Vec<Vec<usize>> = (0..q.relation_count() as u16)
            .map(|rel| pool.on_table(q.table_of(rel)).to_vec())
            .collect();
        for _ in 0..40 {
            let mut ids = Vec::new();
            for c in per_rel.iter().filter(|c| !c.is_empty()) {
                if rng.gen_bool(0.7) {
                    ids.push(*c.choose(&mut rng).unwrap());
                }
            }
            let sel = Selection::from_ids(pool.len(), &ids);
            let est = model.estimate(&sel).expect("cache non-empty").cost;
            let (config, _) = pool.configuration(&sel);
            let direct = opt
                .optimize(q, &config, &OptimizerOptions::standard())
                .best_cost
                .total;
            let err = (est - direct).abs() / direct;
            assert!(
                err < 0.15,
                "{}: cache err {:.1}% (est {est:.0} vs direct {direct:.0})",
                q.name,
                err * 100.0
            );
        }
    }
}

/// Classic INUM (per-IOC calls) and PINUM (two calls) must agree on
/// configuration costs — the paper's "without compromising accuracy".
#[test]
fn inum_and_pinum_caches_agree() {
    let (schema, workload) = fixture();
    let opt = Optimizer::new(&schema.catalog);
    let pool = generate_candidates(&schema.catalog, &workload.queries);
    let mut rng = StdRng::seed_from_u64(2);
    for q in workload.queries.iter().take(4) {
        let inum = build_cache_inum(&opt, q, &BuilderOptions::default());
        let pinum = build_cache_pinum(&opt, q, &BuilderOptions::default());
        assert!(pinum.stats.optimizer_calls < inum.stats.optimizer_calls);
        let (access, _) = collect_pinum(&opt, q, &pool);
        let m_inum = CacheCostModel::new(&inum.cache, &access);
        let m_pinum = CacheCostModel::new(&pinum.cache, &access);
        let per_rel: Vec<Vec<usize>> = (0..q.relation_count() as u16)
            .map(|rel| pool.on_table(q.table_of(rel)).to_vec())
            .collect();
        for _ in 0..30 {
            let mut ids = Vec::new();
            for c in per_rel.iter().filter(|c| !c.is_empty()) {
                if rng.gen_bool(0.7) {
                    ids.push(*c.choose(&mut rng).unwrap());
                }
            }
            let sel = Selection::from_ids(pool.len(), &ids);
            let a = m_inum.estimate(&sel).unwrap().cost;
            let b = m_pinum.estimate(&sel).unwrap().cost;
            // The PINUM cache retains at least as many plans, so it can
            // only be equal or cheaper (closer to the optimizer).
            assert!(
                b <= a * 1.0001,
                "{}: PINUM estimate {b:.0} worse than INUM {a:.0}",
                q.name
            );
            assert!(
                (a - b).abs() / a < 0.25,
                "{}: caches diverge: {a:.0} vs {b:.0}",
                q.name
            );
        }
    }
}

/// Access-cost collection parity: the single keep-all call prices every
/// candidate identically to the per-batch INUM procedure.
#[test]
fn access_cost_collection_is_equivalent() {
    let (schema, workload) = fixture();
    let opt = Optimizer::new(&schema.catalog);
    let pool = generate_candidates(&schema.catalog, &workload.queries);
    let q = &workload.queries[6];
    let (a, sa) = collect_pinum(&opt, q, &pool);
    let (b, sb) = collect_inum(&opt, q, &pool);
    assert_eq!(sa.optimizer_calls, 1);
    assert!(sb.optimizer_calls > 1);
    let orders = q.interesting_orders();
    let full = Selection::full(pool.len());
    for rel in 0..q.relation_count() as u16 {
        let mut slots: Vec<Option<u16>> = vec![None];
        slots.extend(orders.orders_of(rel).iter().map(|&c| Some(c)));
        for slot in slots {
            let x = a.best(rel, slot, &full);
            let y = b.best(rel, slot, &full);
            match (x, y) {
                (Some(x), Some(y)) => {
                    assert!((x - y).abs() / x.max(1.0) < 1e-9, "rel {rel} slot {slot:?}")
                }
                (None, None) => {}
                other => panic!("rel {rel} slot {slot:?}: {other:?}"),
            }
        }
    }
}

/// The advisor never exceeds its budget, never worsens a query, and the
/// PINUM oracle builds the model with far fewer optimizer calls.
#[test]
fn advisor_budget_and_improvement() {
    let (schema, workload) = fixture();
    let queries = &workload.queries[..6];
    let budget = 64 * 1024 * 1024;
    let pinum = advise(
        &schema.catalog,
        queries,
        &AdvisorOptions {
            budget_bytes: budget,
            ..AdvisorOptions::paper_defaults()
        },
    );
    assert!(pinum.greedy.total_bytes <= budget);
    for o in &pinum.per_query {
        assert!(
            o.final_cost <= o.original_cost * (1.0 + 1e-9),
            "{} worsened",
            o.name
        );
    }
    assert!(pinum.average_improvement() > 0.0);

    let inum = advise(
        &schema.catalog,
        queries,
        &AdvisorOptions {
            budget_bytes: budget,
            oracle: CostOracle::InumCache,
            ..AdvisorOptions::paper_defaults()
        },
    );
    assert!(pinum.model_build_calls < inum.model_build_calls);
    // Both oracles should land on selections of comparable quality.
    let rel_gap = (pinum.average_improvement() - inum.average_improvement()).abs();
    assert!(rel_gap < 0.2, "oracle quality gap {rel_gap:.2}");
}

/// With nested loops disabled the optimizer must produce NLJ-free plans,
/// and the exported cache partitions accordingly (paper §V-B).
#[test]
fn enable_nestloop_contract() {
    let (schema, workload) = fixture();
    let opt = Optimizer::new(&schema.catalog);
    for q in workload.queries.iter().take(5) {
        let opts = OptimizerOptions {
            enable_nestloop: false,
            ..OptimizerOptions::pinum_export()
        };
        let planned = opt.optimize(q, &Configuration::empty(), &opts);
        assert!(!planned.plan.uses_nestloop());
        for e in &planned.exported {
            assert!(!e.uses_nlj);
        }
    }
}

/// Disabling the §V-D pruning must not change the winning plan, only the
/// amount of retained work.
#[test]
fn subset_pruning_preserves_winner() {
    let (schema, workload) = fixture();
    let opt = Optimizer::new(&schema.catalog);
    for q in workload.queries.iter().take(5) {
        let covering = pinum::core::builder::covering_configuration(&schema.catalog, q);
        let with = opt.optimize(q, &covering, &OptimizerOptions::pinum_export());
        let without = opt.optimize(
            q,
            &covering,
            &OptimizerOptions {
                pinum_subset_pruning: false,
                ..OptimizerOptions::pinum_export()
            },
        );
        assert!(
            (with.best_cost.total - without.best_cost.total).abs() / with.best_cost.total < 1e-9
        );
        assert!(with.exported.len() <= without.exported.len());
    }
}
