//! Integration tests of the mini execution engine against the optimizer:
//! result equivalence across plan shapes, and estimate-vs-actual
//! cardinality tracking on uniform data.

use pinum::catalog::Configuration;
use pinum::core::builder::covering_configuration;
use pinum::engine::{execute, Database};
use pinum::optimizer::{Optimizer, OptimizerOptions};
use pinum::workload::star::{StarSchema, StarWorkload};

fn fixture() -> (StarSchema, StarWorkload, Database) {
    let schema = StarSchema::generate(42, 0.0004);
    let workload = StarWorkload::generate(&schema, 7, 10);
    let db = Database::generate(&schema.catalog, 99);
    (schema, workload, db)
}

/// Every plan shape the optimizer produces for a query must return the
/// same rows — different configurations induce different join orders and
/// operators, but never different answers.
#[test]
fn plans_are_result_equivalent_across_configurations() {
    let (schema, workload, db) = fixture();
    let opt = Optimizer::new(&schema.catalog);
    for q in workload.queries.iter().take(8) {
        let variants = [
            opt.optimize(q, &Configuration::empty(), &OptimizerOptions::standard()),
            opt.optimize(
                q,
                &covering_configuration(&schema.catalog, q),
                &OptimizerOptions::standard(),
            ),
            opt.optimize(
                q,
                &covering_configuration(&schema.catalog, q),
                &OptimizerOptions {
                    enable_nestloop: false,
                    ..OptimizerOptions::standard()
                },
            ),
        ];
        let mut reference: Option<Vec<Vec<i64>>> = None;
        for planned in &variants {
            let out = execute(&schema.catalog, q, &db, &planned.plan);
            let mut projected = out.project(&schema.catalog, q);
            projected.sort_unstable();
            match &reference {
                None => reference = Some(projected),
                Some(r) => assert_eq!(r, &projected, "{} diverged", q.name),
            }
        }
    }
}

/// On uniform data the planner's output-cardinality estimates should be
/// within a small factor of the truth.
#[test]
fn cardinality_estimates_track_actuals() {
    let (schema, workload, db) = fixture();
    let opt = Optimizer::new(&schema.catalog);
    let mut checked = 0;
    for q in &workload.queries {
        let planned = opt.optimize(q, &Configuration::empty(), &OptimizerOptions::standard());
        let out = execute(&schema.catalog, q, &db, &planned.plan);
        let actual = out.rows.len() as f64;
        if actual < 20.0 {
            continue; // tiny outputs are noise-dominated
        }
        let est = planned.best_rows;
        let ratio = (est / actual).max(actual / est);
        assert!(
            ratio < 4.0,
            "{}: est {est:.0} vs actual {actual:.0}",
            q.name
        );
        checked += 1;
    }
    assert!(checked >= 3, "too few queries produced checkable outputs");
}

/// ORDER BY is respected by executed plans whatever the access paths.
#[test]
fn order_by_holds_under_indexes() {
    let (schema, workload, db) = fixture();
    let opt = Optimizer::new(&schema.catalog);
    for q in workload.queries.iter().take(6) {
        if q.order_by.is_empty() || !q.group_by.is_empty() {
            continue;
        }
        let planned = opt.optimize(
            q,
            &covering_configuration(&schema.catalog, q),
            &OptimizerOptions::standard(),
        );
        let out = execute(&schema.catalog, q, &db, &planned.plan);
        let (rel, col) = q.order_by[0];
        let off = out.offset(&schema.catalog, q, rel, col);
        let vals: Vec<i64> = out.rows.iter().map(|r| r[off]).collect();
        assert!(
            vals.windows(2).all(|w| w[0] <= w[1]),
            "{} output unsorted",
            q.name
        );
    }
}
