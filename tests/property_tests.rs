//! Property-based tests over the core invariants (proptest).

use pinum::catalog::{Catalog, Column, ColumnStats, ColumnType, Index, Table};
use pinum::core::access_costs::collect_pinum;
use pinum::core::builder::{build_cache_pinum, BuilderOptions};
use pinum::core::{CacheCostModel, CandidatePool, Selection, WorkloadCollector, WorkloadModel};
use pinum::optimizer::{Optimizer, OptimizerOptions};
use pinum::query::{InterestingOrders, Ioc, QueryBuilder};
use proptest::prelude::*;

/// Random interesting-order shapes: per-relation order counts.
fn order_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..4, 1..6)
}

proptest! {
    /// IOC enumeration yields exactly Π(orders+1) distinct combinations.
    #[test]
    fn ioc_enumeration_is_exact(shape in order_shape()) {
        let orders = InterestingOrders::new(
            shape.iter().map(|&n| (0..n as u16).collect()).collect(),
        );
        let all: Vec<Ioc> = orders.combinations().collect();
        let expected: u64 = shape.iter().map(|&n| n as u64 + 1).product();
        prop_assert_eq!(all.len() as u64, expected);
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), all.len());
    }

    /// Subset/union laws of the nibble-packed IOC encoding.
    #[test]
    fn ioc_subset_union_laws(
        a in prop::collection::vec(0u8..4, 4),
        b in prop::collection::vec(0u8..4, 4),
    ) {
        let enc = |v: &[u8]| {
            let mut ioc = Ioc::NONE;
            for (rel, &k) in v.iter().enumerate() {
                if k > 0 {
                    ioc = ioc.with_order(rel as u16, k - 1);
                }
            }
            ioc
        };
        let (x, y) = (enc(&a), enc(&b));
        // Reflexive; NONE is bottom.
        prop_assert!(x.is_subset_of(x));
        prop_assert!(Ioc::NONE.is_subset_of(x));
        // Definition check against the per-relation semantics.
        let subset_naive = a.iter().zip(&b).all(|(&p, &q)| p == 0 || p == q);
        prop_assert_eq!(x.is_subset_of(y), subset_naive);
        // Union agrees with compatibility.
        let compatible = a.iter().zip(&b).all(|(&p, &q)| p == 0 || q == 0 || p == q);
        prop_assert_eq!(x.union(y).is_some(), compatible);
        if let Some(u) = x.union(y) {
            prop_assert!(x.is_subset_of(u));
            prop_assert!(y.is_subset_of(u));
        }
    }

    /// What-if index sizes are monotone in both rows and key width, and
    /// never exceed their materialized twins.
    #[test]
    fn whatif_size_monotonicity(rows in 1_000u64..5_000_000, extra_col in 0usize..2) {
        let table = {
            let mut t = Table::new(
                "t",
                rows,
                vec![
                    Column::new("a", ColumnType::Int8).with_ndv(rows),
                    Column::new("b", ColumnType::Int4).with_ndv(100),
                    Column::new("c", ColumnType::Int4).with_ndv(10),
                ],
            );
            let mut cat = Catalog::new();
            let id = cat.add_table(t.clone());
            t = cat.table(id).clone();
            t
        };
        let narrow = Index::hypothetical(&table, vec![0], false);
        let mut cols = vec![0u16, 1];
        if extra_col > 0 { cols.push(2); }
        let wide = Index::hypothetical(&table, cols.clone(), false);
        prop_assert!(wide.size().leaf_pages >= narrow.size().leaf_pages);
        let mat = Index::materialized(&table, cols, false);
        prop_assert!(mat.size().total_pages() >= wide.size().total_pages());
    }

    /// Selectivity estimates always land in [0, 1] and compose.
    #[test]
    fn selectivity_bounds(lo in 0.0f64..1000.0, width in 0.0f64..2000.0, ndv in 1.0f64..100000.0) {
        let stats = ColumnStats::uniform(0.0, 1000.0, ndv);
        let sel = stats.range_selectivity(lo, lo + width);
        prop_assert!((0.0..=1.0).contains(&sel));
        let eq = stats.eq_selectivity();
        prop_assert!((0.0..=1.0).contains(&eq));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end cache invariant on random two-table schemas: adding
    /// candidates never increases the estimated cost, and the empty-config
    /// estimate approximates a direct optimizer call.
    #[test]
    fn cache_estimates_are_monotone_and_calibrated(
        fact_rows in 50_000u64..400_000,
        dim_rows in 500u64..20_000,
        sel_pct in 1u32..20,
    ) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            fact_rows,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(dim_rows),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
                Column::new("s", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            dim_rows,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(dim_rows).with_correlation(1.0),
                Column::new("w", ColumnType::Int4).with_ndv(50),
            ],
        ));
        let q = QueryBuilder::new("q", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0 * sel_pct as f64)
            .select(("f", "s"))
            .order_by(("d", "w"))
            .build();
        let f = cat.table(cat.table_id("f").unwrap()).clone();
        let d = cat.table(cat.table_id("d").unwrap()).clone();
        let pool = CandidatePool::from_indexes(vec![
            Index::hypothetical(&f, vec![0], false),
            Index::hypothetical(&f, vec![1, 0, 2], false),
            Index::hypothetical(&d, vec![0], false),
            Index::hypothetical(&d, vec![1], false),
        ]);
        let opt = Optimizer::new(&cat);
        let built = build_cache_pinum(&opt, &q, &BuilderOptions::default());
        let (access, _) = collect_pinum(&opt, &q, &pool);
        let model = CacheCostModel::new(&built.cache, &access);

        // Monotone in the selection.
        let mut prev = model.estimate(&Selection::empty(pool.len())).unwrap().cost;
        let mut sel = Selection::empty(pool.len());
        for i in 0..pool.len() {
            sel.insert(i);
            let est = model.estimate(&sel).unwrap().cost;
            prop_assert!(est <= prev * (1.0 + 1e-9));
            prev = est;
        }

        // Calibrated at the empty configuration.
        let est = model.estimate(&Selection::empty(pool.len())).unwrap().cost;
        let direct = opt
            .optimize(&q, &pinum::catalog::Configuration::empty(), &OptimizerOptions::standard())
            .best_cost
            .total;
        prop_assert!((est - direct).abs() / direct < 0.10,
            "est {} vs direct {}", est, direct);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The workload model's incremental pricing is exact: on random
    /// two-table workloads, for every base selection and every candidate,
    /// `price_delta` equals a full re-pricing under the extended
    /// selection, and both agree with the per-query `CacheCostModel`.
    #[test]
    fn workload_model_delta_pricing_is_exact(
        fact_rows in 50_000u64..400_000,
        dim_rows in 500u64..20_000,
        sel_pct in 1u32..20,
        sel_masks in prop::collection::vec(0u64..64, 6),
    ) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            fact_rows,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(dim_rows),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
                Column::new("s", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            dim_rows,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(dim_rows).with_correlation(1.0),
                Column::new("w", ColumnType::Int4).with_ndv(50),
            ],
        ));
        let q1 = QueryBuilder::new("q1", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0 * sel_pct as f64)
            .select(("f", "s"))
            .order_by(("d", "w"))
            .build();
        let q2 = QueryBuilder::new("q2", &cat)
            .table("f")
            .filter_range(("f", "v"), 0.0, 10.0 * sel_pct as f64)
            .select(("f", "s"))
            .order_by(("f", "s"))
            .build();
        let f = cat.table(cat.table_id("f").unwrap()).clone();
        let d = cat.table(cat.table_id("d").unwrap()).clone();
        let pool = CandidatePool::from_indexes(vec![
            Index::hypothetical(&f, vec![0], false),
            Index::hypothetical(&f, vec![1, 0, 2], false),
            Index::hypothetical(&f, vec![2], false),
            Index::hypothetical(&d, vec![0], false),
            Index::hypothetical(&d, vec![1], false),
            Index::hypothetical(&d, vec![1, 0], false),
        ]);
        let opt = Optimizer::new(&cat);
        let models: Vec<_> = [&q1, &q2]
            .iter()
            .map(|q| {
                let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
                let (access, _) = collect_pinum(&opt, q, &pool);
                (built.cache, access)
            })
            .collect();
        let wm = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));

        for mask in sel_masks {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            let sel = Selection::from_ids(pool.len(), &ids);

            // Flattened pricing agrees with the reference model per query.
            let state = wm.price_full(&sel);
            for (q, (cache, access)) in models.iter().enumerate() {
                let reference = CacheCostModel::new(cache, access)
                    .estimate(&sel)
                    .map(|e| e.cost)
                    .unwrap_or(f64::INFINITY);
                prop_assert_eq!(state.per_query()[q], reference,
                    "query {} selection {:?}", q, &ids);
            }

            // Delta pricing equals full re-pricing for every candidate.
            for cand in 0..pool.len() {
                if sel.contains(cand) {
                    continue;
                }
                let delta = wm.price_delta(&state, &sel, cand);
                let full = wm.price_full(&sel.with(cand));
                prop_assert_eq!(delta, full.total(),
                    "selection {:?} + candidate {}", &ids, cand);
            }

            // Removal deltas are exact too: for every selected candidate,
            // `price_delta_removed` equals a full re-pricing of the
            // shrunken selection.
            for &cand in &ids {
                let delta = wm.price_delta_removed(&state, &sel, cand);
                let full = wm.price_full(&sel.without(cand));
                prop_assert_eq!(delta, full.total(),
                    "selection {:?} - candidate {}", &ids, cand);
            }

            // And swaps (drop one member, add one non-member) match the
            // two-step full re-pricing in a single delta.
            for &dropped in &ids {
                for added in 0..pool.len() {
                    if sel.contains(added) {
                        continue;
                    }
                    let delta = wm.price_delta_swapped(&state, &sel, added, dropped);
                    let full = wm.price_full(&sel.without(dropped).with(added));
                    prop_assert_eq!(delta, full.total(),
                        "selection {:?} + {} - {}", &ids, added, dropped);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Workload-level batched collection is exact: on random two-table
    /// workloads whose queries overlap on some templates and diverge on
    /// others, every catalog the grouped `WorkloadCollector` produces is
    /// **bit-identical** to a dedicated per-query `collect_pinum` call,
    /// and the collector spends exactly one optimizer call per distinct
    /// template.
    #[test]
    fn batched_collection_equals_per_query_collection(
        fact_rows in 50_000u64..400_000,
        dim_rows in 500u64..20_000,
        sel_a in 1u32..20,
        sel_b in 1u32..20,
        dim_filter in 0u32..2,
    ) {
        let dim_filtered = dim_filter == 1;
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            fact_rows,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(dim_rows),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
                Column::new("s", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            dim_rows,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(dim_rows).with_correlation(1.0),
                Column::new("w", ColumnType::Int4).with_ndv(50),
            ],
        ));
        // q1/q2 share the `f` template iff sel_a == sel_b; q3 reuses q1's
        // filter under a different join/projection/order shape; q4 brings
        // an optionally-filtered `d` template.
        let q1 = QueryBuilder::new("q1", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0 * sel_a as f64)
            .select(("f", "s"))
            .order_by(("d", "w"))
            .build();
        let q2 = QueryBuilder::new("q2", &cat)
            .table("f")
            .filter_range(("f", "v"), 0.0, 10.0 * sel_b as f64)
            .select(("f", "s"))
            .order_by(("f", "s"))
            .build();
        let q3 = QueryBuilder::new("q3", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0 * sel_a as f64)
            .select(("d", "w"))
            .order_by(("f", "v"))
            .build();
        let mut q4b = QueryBuilder::new("q4", &cat)
            .table("d")
            .select(("d", "w"))
            .order_by(("d", "k"));
        if dim_filtered {
            q4b = q4b.filter_range(("d", "w"), 0.0, 5.0);
        }
        let q4 = q4b.build();
        let queries = [q1, q2, q3, q4];

        let f = cat.table(cat.table_id("f").unwrap()).clone();
        let d = cat.table(cat.table_id("d").unwrap()).clone();
        let pool = CandidatePool::from_indexes(vec![
            Index::hypothetical(&f, vec![0], false),
            Index::hypothetical(&f, vec![1, 0, 2], false),
            Index::hypothetical(&f, vec![2], false),
            Index::hypothetical(&d, vec![0], false),
            Index::hypothetical(&d, vec![1], false),
            Index::hypothetical(&d, vec![1, 0], false),
        ]);
        let opt = Optimizer::new(&cat);
        let mut collector = WorkloadCollector::new();
        let mut batched_calls = 0usize;
        for q in &queries {
            let (batched, stats) = collector.collect(&opt, q, &pool);
            batched_calls += stats.optimizer_calls;
            let (reference, _) = collect_pinum(&opt, q, &pool);
            prop_assert_eq!(&batched, &reference, "{} diverged", &q.name);
        }
        // Exactly one call per distinct template: q3 always hits q1's two
        // templates; q2 shares f iff the filter bounds agree; q4's d
        // template is fresh iff it is filtered.
        let mut expected = 2; // q1: f-filtered + d-bare
        if sel_a != sel_b {
            expected += 1; // q2's distinct f filter
        }
        if dim_filtered {
            expected += 1; // q4's filtered d
        }
        prop_assert_eq!(batched_calls, expected);
        prop_assert_eq!(collector.optimizer_calls(), expected);

        // A primed re-collection of the whole workload is free and still
        // exact.
        let (again, again_stats) = collector.collect_workload(&opt, &queries, &pool);
        prop_assert_eq!(again_stats.optimizer_calls, 0);
        for (q, batched) in queries.iter().zip(&again) {
            let (reference, _) = collect_pinum(&opt, q, &pool);
            prop_assert_eq!(batched, &reference, "{} diverged on re-collection", &q.name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Streaming mutations are exact: admitting a query and then evicting
    /// that same query leaves `price_full` **bit-identical** (total and
    /// every live per-query entry) to the model that never saw it, on
    /// random selections — and admitting the whole workload query by
    /// query reproduces the batch `build` exactly.
    #[test]
    fn admit_then_evict_is_bit_identical_to_never_admitted(
        fact_rows in 50_000u64..400_000,
        dim_rows in 500u64..20_000,
        sel_pct in 1u32..20,
        sel_masks in prop::collection::vec(0u64..64, 8),
    ) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            fact_rows,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(dim_rows),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
                Column::new("s", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            dim_rows,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(dim_rows).with_correlation(1.0),
                Column::new("w", ColumnType::Int4).with_ndv(50),
            ],
        ));
        let q1 = QueryBuilder::new("q1", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0 * sel_pct as f64)
            .select(("f", "s"))
            .order_by(("d", "w"))
            .build();
        let q2 = QueryBuilder::new("q2", &cat)
            .table("f")
            .filter_range(("f", "v"), 0.0, 10.0 * sel_pct as f64)
            .select(("f", "s"))
            .order_by(("f", "s"))
            .build();
        // The query that will be admitted and then evicted again.
        let q3 = QueryBuilder::new("q3", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("d", "w"), 0.0, 5.0)
            .select(("d", "w"))
            .order_by(("f", "v"))
            .build();
        let f = cat.table(cat.table_id("f").unwrap()).clone();
        let d = cat.table(cat.table_id("d").unwrap()).clone();
        let pool = CandidatePool::from_indexes(vec![
            Index::hypothetical(&f, vec![0], false),
            Index::hypothetical(&f, vec![1, 0, 2], false),
            Index::hypothetical(&f, vec![2], false),
            Index::hypothetical(&d, vec![0], false),
            Index::hypothetical(&d, vec![1], false),
            Index::hypothetical(&d, vec![1, 0], false),
        ]);
        let opt = Optimizer::new(&cat);
        let build_inputs = |q: &pinum::query::Query| {
            let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
            let (access, _) = collect_pinum(&opt, q, &pool);
            (built.cache, access)
        };
        let base_models: Vec<_> = [&q1, &q2].iter().map(|q| build_inputs(q)).collect();
        let (extra_cache, extra_access) = build_inputs(&q3);

        // Incremental admission reproduces the batch build bit for bit.
        let batch = WorkloadModel::build(pool.len(), base_models.iter().map(|(c, a)| (c, a)));
        let mut streamed = WorkloadModel::build(pool.len(), std::iter::empty());
        for (c, a) in &base_models {
            streamed.admit_query(c, a);
        }
        prop_assert_eq!(&streamed, &batch, "admit-by-admit diverged from batch build");

        // Admit q3, then evict it again.
        let mut mutated = batch.clone();
        let qid = mutated.admit_query(&extra_cache, &extra_access);
        mutated.evict_query(qid);

        for mask in sel_masks {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            let sel = Selection::from_ids(pool.len(), &ids);
            let b = batch.price_full(&sel);
            let m = mutated.price_full(&sel);
            prop_assert!(
                b.total() == m.total() || (b.total().is_infinite() && m.total().is_infinite()),
                "selection {:?}: totals diverged {} vs {}", &ids, b.total(), m.total()
            );
            // Live entries bit-identical; the tombstone contributes 0.0.
            prop_assert_eq!(&m.per_query()[..b.per_query().len()], b.per_query());
            prop_assert_eq!(m.per_query()[qid], 0.0);

            // Deltas stay exact on the mutated model too.
            let state = mutated.price_full(&sel);
            for cand in 0..pool.len() {
                if sel.contains(cand) {
                    continue;
                }
                let delta = mutated.price_delta(&state, &sel, cand);
                let full = mutated.price_full(&sel.with(cand));
                prop_assert_eq!(delta, full.total(),
                    "mutated model: selection {:?} + {}", &ids, cand);
            }
        }
    }
}

/// Shared two-query star fixture of the session / scoped-search
/// proptests: random-sized f/d catalog, five hypothetical candidates,
/// per-query PINUM `(plan cache, access catalog)` models.
fn session_fixture(
    fact_rows: u64,
    dim_rows: u64,
    sel_pct: u32,
) -> (
    CandidatePool,
    Vec<(pinum::core::PlanCache, pinum::core::AccessCostCatalog)>,
) {
    let mut cat = Catalog::new();
    cat.add_table(Table::new(
        "f",
        fact_rows,
        vec![
            Column::new("fk", ColumnType::Int8).with_ndv(dim_rows),
            Column::new("v", ColumnType::Int4).with_ndv(1_000),
            Column::new("s", ColumnType::Int4).with_ndv(100),
        ],
    ));
    cat.add_table(Table::new(
        "d",
        dim_rows,
        vec![
            Column::new("k", ColumnType::Int8)
                .with_ndv(dim_rows)
                .with_correlation(1.0),
            Column::new("w", ColumnType::Int4).with_ndv(50),
        ],
    ));
    let q1 = QueryBuilder::new("q1", &cat)
        .table("f")
        .table("d")
        .join(("f", "fk"), ("d", "k"))
        .filter_range(("f", "v"), 0.0, 10.0 * sel_pct as f64)
        .select(("f", "s"))
        .order_by(("d", "w"))
        .build();
    let q2 = QueryBuilder::new("q2", &cat)
        .table("f")
        .filter_range(("f", "v"), 0.0, 10.0 * sel_pct as f64)
        .select(("f", "s"))
        .order_by(("f", "s"))
        .build();
    let f = cat.table(cat.table_id("f").unwrap()).clone();
    let d = cat.table(cat.table_id("d").unwrap()).clone();
    let pool = CandidatePool::from_indexes(vec![
        Index::hypothetical(&f, vec![0], false),
        Index::hypothetical(&f, vec![1, 0, 2], false),
        Index::hypothetical(&f, vec![2], false),
        Index::hypothetical(&d, vec![0], false),
        Index::hypothetical(&d, vec![1], false),
    ]);
    let opt = Optimizer::new(&cat);
    let models = [&q1, &q2]
        .iter()
        .map(|q| {
            let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
            let (access, _) = collect_pinum(&opt, q, &pool);
            (built.cache, access)
        })
        .collect();
    (pool, models)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A `PricingSession` surviving a randomized admit / evict / reweight /
    /// re-advise / compact sequence stays **bit-identical** to a fresh
    /// `WorkloadModel::build` + `price_full` over the surviving queries at
    /// every step — and, because re-advises carry the session state into
    /// the search and picks are applied as delta splices, the whole
    /// sequence performs **zero** full re-pricings.
    #[test]
    fn pricing_session_survives_randomized_mutation_sequences(
        fact_rows in 50_000u64..400_000,
        dim_rows in 500u64..20_000,
        sel_pct in 1u32..20,
        ops in prop::collection::vec(0u64..1000, 4..28),
    ) {
        use pinum::advisor::search::{LazyGreedy, SearchScope, SearchStrategy};
        use pinum::advisor::greedy::GreedyOptions;
        use pinum::core::PricingSession;

        let (pool, models) = session_fixture(fact_rows, dim_rows, sel_pct);
        let mut session = PricingSession::new(pool.len());
        // Shadow bookkeeping: (model index, weight) of every *live*
        // session slot, in slot order (tombstones = None).
        let mut live: Vec<Option<(usize, f64)>> = Vec::new();
        let gopts = GreedyOptions { budget_bytes: u64::MAX, benefit_per_byte: false };

        for op in ops {
            match op % 5 {
                // Admit one of the two models at a derived weight.
                0 | 1 => {
                    let idx = (op as usize / 5) % models.len();
                    let weight = 1.0 + (op % 7) as f64 * 0.5;
                    let (c, a) = &models[idx];
                    let qid = session.admit_query_weighted(c, a, weight);
                    prop_assert_eq!(qid, live.len());
                    live.push(Some((idx, weight)));
                }
                // Evict a live slot, if any.
                2 => {
                    let live_slots: Vec<usize> =
                        (0..live.len()).filter(|&i| live[i].is_some()).collect();
                    if let Some(&qid) = live_slots.get(op as usize % live_slots.len().max(1)) {
                        session.evict_query(qid);
                        live[qid] = None;
                    }
                }
                // Reweight a live slot, if any.
                3 => {
                    let live_slots: Vec<usize> =
                        (0..live.len()).filter(|&i| live[i].is_some()).collect();
                    if let Some(&qid) = live_slots.get(op as usize % live_slots.len().max(1)) {
                        let weight = 0.25 + (op % 11) as f64;
                        session.reweight_query(qid, weight);
                        live[qid].as_mut().unwrap().1 = weight;
                    }
                }
                // Re-advise through the session: warm-started search with
                // the carried state, result installed without re-pricing.
                _ => {
                    let scope = SearchScope::all().with_warm_state(session.state());
                    let result = LazyGreedy.search_scoped(
                        &pool,
                        session.model(),
                        &gopts,
                        session.selection(),
                        &scope,
                    );
                    prop_assert_eq!(result.full_repricings, 0,
                        "warm-stated search fully re-priced");
                    session.install(result.selection, result.final_state, result.full_repricings);
                    // Occasionally compact after a re-advise, remapping
                    // the shadow books the way online consumers do.
                    if op % 2 == 0 {
                        let remap = session.compact();
                        let mut next = vec![None; remap.iter().filter(|&&n| n != u32::MAX).count()];
                        for (old, &new) in remap.iter().enumerate() {
                            if new != u32::MAX {
                                next[new as usize] = live[old];
                            }
                        }
                        live = next;
                    }
                }
            }

            // The invariant, every step: session state ≡ fresh build +
            // price_full over the surviving queries at their weights.
            let survivors: Vec<(usize, f64)> = live.iter().flatten().copied().collect();
            let mut fresh = WorkloadModel::build(
                pool.len(),
                survivors.iter().map(|&(i, _)| (&models[i].0, &models[i].1)),
            );
            // Fresh slots are dense; session slots may hold tombstones in
            // between, contributing exactly 0.0 to the in-order sum.
            for (fresh_slot, (_, w)) in live.iter().flatten().enumerate() {
                if *w != 1.0 {
                    fresh.reweight_query(fresh_slot, *w);
                }
            }
            let full = fresh.price_full(session.selection());
            // The bit-level invariant: the spliced session total equals a
            // from-scratch `price_full` over the session's own model —
            // same leaves (tombstones included), same tree shape, same
            // bits.
            let own = session.model().price_full(session.selection());
            prop_assert_eq!(
                session.total().to_bits(), own.total().to_bits(),
                "spliced session total diverged from its own price_full");
            // Against the *dense* rebuild the tree shape differs (the
            // session's tombstones occupy leaves the fresh build never
            // had), so totals agree only up to summation grouping; the
            // per-query costs below are still bit-identical.
            let close = full.total() == session.total()
                || (full.total().is_infinite() && session.total().is_infinite())
                || (full.total() - session.total()).abs()
                    <= 1e-9 * full.total().abs().max(1.0);
            prop_assert!(
                close,
                "session total diverged from fresh build + price_full: {} vs {}",
                session.total(), full.total());
            let live_costs: Vec<u64> = session
                .state()
                .per_query()
                .iter()
                .zip(&live)
                .filter(|(_, l)| l.is_some())
                .map(|(c, _)| c.to_bits())
                .collect();
            let fresh_costs: Vec<u64> =
                full.per_query().iter().map(|c| c.to_bits()).collect();
            prop_assert_eq!(live_costs, fresh_costs, "per-query states diverged");
        }
        prop_assert_eq!(session.full_repricings(), 0,
            "the whole randomized session should never fully re-price");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `search_scoped` with a full mask is **bit-identical** to
    /// `search_warm` on all four strategies, across random warm seeds and
    /// budgets — scoping is pure restriction, a full scope restricts
    /// nothing.
    #[test]
    fn full_mask_scoped_search_equals_warm_search(
        fact_rows in 50_000u64..400_000,
        dim_rows in 500u64..20_000,
        warm_mask in 0u64..32,
        budget_shift in 0u32..3,
    ) {
        use pinum::advisor::search::{SearchScope, StrategyKind};
        use pinum::advisor::greedy::GreedyOptions;

        let (pool, models) = session_fixture(fact_rows, dim_rows, 1);
        let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));

        let warm_ids: Vec<usize> =
            (0..pool.len()).filter(|i| warm_mask & (1 << i) != 0).collect();
        let warm = Selection::from_ids(pool.len(), &warm_ids);
        let full_mask = Selection::full(pool.len());
        let gopts = GreedyOptions {
            budget_bytes: u64::MAX >> (budget_shift * 20),
            benefit_per_byte: false,
        };

        for kind in [
            StrategyKind::LazyGreedy,
            StrategyKind::EagerGreedy,
            StrategyKind::SwapHillClimb,
            StrategyKind::Anneal { seed: 7 },
        ] {
            let strategy = kind.build();
            let plain = strategy.search_warm(&pool, &model, &gopts, &warm);
            let scoped = strategy.search_scoped(
                &pool,
                &model,
                &gopts,
                &warm,
                &SearchScope::masked(&full_mask),
            );
            prop_assert_eq!(&plain.picked, &scoped.picked, "{} picks", strategy.name());
            prop_assert_eq!(&plain.selection, &scoped.selection, "{}", strategy.name());
            prop_assert_eq!(
                &plain.cost_trajectory, &scoped.cost_trajectory,
                "{} trajectory", strategy.name()
            );
            prop_assert_eq!(plain.evaluations, scoped.evaluations, "{}", strategy.name());
            prop_assert_eq!(plain.total_bytes, scoped.total_bytes, "{}", strategy.name());
        }
    }
}
