//! End-to-end equivalence of the two greedy engines on the paper's star
//! workload: the incremental `WorkloadModel` advisor must reproduce the
//! naive full-repricing advisor's pick sequence and cost trajectory
//! exactly — same indexes, same order, same costs, same byte total.

use pinum::advisor::candidates::generate_candidates;
use pinum::advisor::greedy::{greedy_select, greedy_select_model, GreedyOptions};
use pinum::advisor::tool::{advise, AdvisorOptions};
use pinum::core::access_costs::{collect_pinum, AccessCostCatalog};
use pinum::core::builder::{build_cache_pinum, BuilderOptions};
use pinum::core::{CacheCostModel, CandidatePool, PlanCache, Selection, WorkloadModel};
use pinum::optimizer::Optimizer;
use pinum::workload::star::{StarSchema, StarWorkload};

fn star_models(
    queries: usize,
    candidate_cap: usize,
) -> (
    StarSchema,
    CandidatePool,
    Vec<(PlanCache, AccessCostCatalog)>,
) {
    let schema = StarSchema::generate(42, 0.01);
    let workload = StarWorkload::generate(&schema, 7, queries);
    let full_pool = generate_candidates(&schema.catalog, &workload.queries);
    let pool = if full_pool.len() > candidate_cap {
        CandidatePool::from_indexes(full_pool.indexes()[..candidate_cap].to_vec())
    } else {
        full_pool
    };
    let optimizer = Optimizer::new(&schema.catalog);
    let models = workload
        .queries
        .iter()
        .map(|q| {
            let built = build_cache_pinum(&optimizer, q, &BuilderOptions::default());
            let (access, _) = collect_pinum(&optimizer, q, &pool);
            (built.cache, access)
        })
        .collect();
    (schema, pool, models)
}

/// The pre-WorkloadModel advisor baseline: every probe re-prices the whole
/// workload through per-query `CacheCostModel`s — the single reference
/// oracle every equivalence test compares against. Totals go through the
/// canonical `pairwise_total` shape, the same shape the model engine's
/// sum tree produces, so trajectories compare bit for bit.
fn naive_reference(
    pool: &CandidatePool,
    models: &[(PlanCache, AccessCostCatalog)],
    gopts: &GreedyOptions,
) -> pinum::advisor::GreedyResult {
    greedy_select(pool, gopts, |sel: &Selection| {
        let costs: Vec<f64> = models
            .iter()
            .map(|(cache, access)| {
                CacheCostModel::new(cache, access)
                    .estimate(sel)
                    .map(|e| e.cost)
                    .unwrap_or(f64::INFINITY)
            })
            .collect();
        pinum::core::pairwise_total(&costs)
    })
}

#[test]
fn incremental_advisor_reproduces_naive_on_star_workload() {
    let (_schema, pool, models) = star_models(12, 120);
    assert!(pool.len() >= 40, "pool too small to be interesting");
    let budget = pool.selection_bytes(&Selection::full(pool.len())) / 3;
    let gopts = GreedyOptions {
        budget_bytes: budget,
        benefit_per_byte: false,
    };
    let naive = naive_reference(&pool, &models, &gopts);
    let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
    let incremental = greedy_select_model(&pool, &gopts, &model);

    assert!(!naive.picked.is_empty(), "budget should admit picks");
    assert_eq!(naive.picked, incremental.picked, "pick sequences diverged");
    assert_eq!(
        naive.cost_trajectory, incremental.cost_trajectory,
        "cost trajectories diverged"
    );
    assert_eq!(naive.total_bytes, incremental.total_bytes);
    // The incremental engine re-probes each accepted winner once to
    // splice it into the priced state instead of fully re-pricing: one
    // extra delta evaluation per pick, decisions unchanged.
    assert_eq!(
        naive.evaluations + naive.picked.len(),
        incremental.evaluations
    );
    // The delta engine must do strictly less per-query work than naive
    // full repricing would have.
    assert!(
        incremental.queries_repriced < naive.evaluations * models.len(),
        "delta engine re-priced as much as naive ({} vs {})",
        incremental.queries_repriced,
        naive.evaluations * models.len()
    );
}

#[test]
fn per_byte_ranking_also_matches() {
    let (_schema, pool, models) = star_models(8, 80);
    let budget = pool.selection_bytes(&Selection::full(pool.len())) / 4;
    let gopts = GreedyOptions {
        budget_bytes: budget,
        benefit_per_byte: true,
    };
    let naive = naive_reference(&pool, &models, &gopts);
    let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
    let incremental = greedy_select_model(&pool, &gopts, &model);
    assert_eq!(naive.picked, incremental.picked);
    assert_eq!(naive.cost_trajectory, incremental.cost_trajectory);
}

#[test]
fn model_engine_skips_nan_benefits_from_unpriceable_queries() {
    // Replace one query's cache with an empty one: that query prices to
    // infinity under every selection, so every probe's benefit is
    // inf - inf = NaN. Both engines must pick nothing instead of filling
    // the budget with junk.
    let (_schema, pool, mut models) = star_models(4, 40);
    let orders = models[0].0.orders.clone();
    let n_rels = models[0].0.n_rels;
    models[0].0 = PlanCache::new("emptied", n_rels, orders);
    let gopts = GreedyOptions {
        budget_bytes: u64::MAX,
        benefit_per_byte: false,
    };
    let naive = naive_reference(&pool, &models, &gopts);
    let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
    let incremental = greedy_select_model(&pool, &gopts, &model);
    assert!(naive.picked.is_empty(), "naive picked {:?}", naive.picked);
    assert!(
        incremental.picked.is_empty(),
        "incremental picked {:?}",
        incremental.picked
    );
    assert_eq!(naive.cost_trajectory, vec![f64::INFINITY]);
    assert_eq!(incremental.cost_trajectory, vec![f64::INFINITY]);
    // Lazy greedy parks NaN probes at score 0 and must likewise terminate
    // with no picks (all parked entries drained, none picked).
    use pinum::advisor::search::{LazyGreedy, SearchStrategy};
    let lazy = LazyGreedy.search(&pool, &model, &gopts);
    assert!(lazy.picked.is_empty(), "lazy picked {:?}", lazy.picked);
    assert_eq!(lazy.cost_trajectory, vec![f64::INFINITY]);
}

#[test]
fn advise_still_improves_star_workload_through_the_model_engine() {
    let schema = StarSchema::generate(42, 0.01);
    let workload = StarWorkload::generate(&schema, 7, 6);
    let opts = AdvisorOptions {
        budget_bytes: 256 * 1024 * 1024,
        ..AdvisorOptions::paper_defaults()
    };
    let advice = advise(&schema.catalog, &workload.queries, &opts);
    assert!(!advice.greedy.picked.is_empty());
    assert!(advice.greedy.total_bytes <= opts.budget_bytes);
    assert!(advice.average_improvement() > 0.1);
    assert!(advice.greedy.queries_repriced > 0, "model engine not used");
    for o in &advice.per_query {
        assert!(
            o.final_cost <= o.original_cost * (1.0 + 1e-9),
            "{} got worse",
            o.name
        );
    }
}
