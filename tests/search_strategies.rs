//! Cross-strategy equivalence and quality guarantees on realistic
//! workloads:
//!
//! * **lazy greedy ≡ plain greedy** — identical `GreedyResult` (picks,
//!   cost trajectory, byte total) across seeded star workloads and the
//!   TPC-H trio, at strictly fewer probes;
//! * **swap / anneal never worse than greedy** — both are greedy-seeded,
//!   so their final workload cost is bounded by the seed's;
//! * **parallel and serial model construction agree** — the flattened
//!   `WorkloadModel` is identical whichever path built it.

use pinum::advisor::candidates::generate_candidates;
use pinum::advisor::greedy::{greedy_select_model, GreedyOptions};
use pinum::advisor::search::{Anneal, LazyGreedy, SearchStrategy, SwapHillClimb};
use pinum::core::access_costs::{collect_pinum, AccessCostCatalog};
use pinum::core::builder::{build_cache_pinum, BuilderOptions};
use pinum::core::{CandidatePool, PlanCache, Selection, WorkloadModel};
use pinum::optimizer::Optimizer;
use pinum::query::Query;
use pinum::workload::star::{StarSchema, StarWorkload};
use pinum::workload::{tpch_catalog, tpch_q10, tpch_q3, tpch_q5};

fn build_models(
    catalog: &pinum::catalog::Catalog,
    queries: &[Query],
    pool: &CandidatePool,
) -> Vec<(PlanCache, AccessCostCatalog)> {
    let optimizer = Optimizer::new(catalog);
    queries
        .iter()
        .map(|q| {
            let built = build_cache_pinum(&optimizer, q, &BuilderOptions::default());
            let (access, _) = collect_pinum(&optimizer, q, pool);
            (built.cache, access)
        })
        .collect()
}

fn star_fixture(
    schema_seed: u64,
    workload_seed: u64,
    queries: usize,
    candidate_cap: usize,
) -> (CandidatePool, WorkloadModel) {
    let schema = StarSchema::generate(schema_seed, 0.01);
    let workload = StarWorkload::generate(&schema, workload_seed, queries);
    let full_pool = generate_candidates(&schema.catalog, &workload.queries);
    let pool = if full_pool.len() > candidate_cap {
        CandidatePool::from_indexes(full_pool.indexes()[..candidate_cap].to_vec())
    } else {
        full_pool
    };
    let models = build_models(&schema.catalog, &workload.queries, &pool);
    let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
    (pool, model)
}

fn tpch_fixture() -> (CandidatePool, WorkloadModel) {
    let catalog = tpch_catalog(0.1);
    let queries = vec![tpch_q3(&catalog), tpch_q5(&catalog), tpch_q10(&catalog)];
    let pool = generate_candidates(&catalog, &queries);
    let models = build_models(&catalog, &queries, &pool);
    let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
    (pool, model)
}

fn assert_lazy_matches_plain(pool: &CandidatePool, model: &WorkloadModel, budget: u64, tag: &str) {
    let gopts = GreedyOptions {
        budget_bytes: budget,
        benefit_per_byte: false,
    };
    let plain = greedy_select_model(pool, &gopts, model);
    let lazy = LazyGreedy.search(pool, model, &gopts);
    assert_eq!(plain.picked, lazy.picked, "{tag}: pick sequences diverged");
    assert_eq!(
        plain.cost_trajectory, lazy.cost_trajectory,
        "{tag}: cost trajectories diverged"
    );
    assert_eq!(plain.total_bytes, lazy.total_bytes, "{tag}: byte totals");
    assert!(
        lazy.evaluations <= plain.evaluations,
        "{tag}: lazy probed more ({} vs {})",
        lazy.evaluations,
        plain.evaluations
    );
    if plain.picked.len() >= 2 {
        assert!(
            lazy.evaluations < plain.evaluations,
            "{tag}: lazy saved nothing over {} picks",
            plain.picked.len()
        );
    }
}

#[test]
fn lazy_greedy_matches_plain_greedy_on_seeded_star_workloads() {
    for (schema_seed, workload_seed) in [(42, 7), (11, 3), (1234, 99)] {
        let (pool, model) = star_fixture(schema_seed, workload_seed, 10, 120);
        let full_bytes = pool.selection_bytes(&Selection::full(pool.len()));
        for budget in [full_bytes / 4, full_bytes / 2, u64::MAX] {
            assert_lazy_matches_plain(
                &pool,
                &model,
                budget,
                &format!("star seeds ({schema_seed},{workload_seed}) budget {budget}"),
            );
        }
    }
}

#[test]
fn lazy_greedy_matches_plain_greedy_on_tpch() {
    let (pool, model) = tpch_fixture();
    assert!(pool.len() >= 20, "TPC-H pool too small: {}", pool.len());
    let full_bytes = pool.selection_bytes(&Selection::full(pool.len()));
    for budget in [full_bytes / 4, u64::MAX] {
        assert_lazy_matches_plain(&pool, &model, budget, &format!("tpch budget {budget}"));
    }
}

#[test]
fn swap_and_anneal_never_worse_than_greedy_on_star_and_tpch() {
    let star = star_fixture(42, 7, 8, 100);
    let tpch = tpch_fixture();
    for (tag, (pool, model)) in [("star", &star), ("tpch", &tpch)] {
        let budget = pool.selection_bytes(&Selection::full(pool.len())) / 3;
        let gopts = GreedyOptions {
            budget_bytes: budget,
            benefit_per_byte: false,
        };
        let greedy = LazyGreedy.search(pool, model, &gopts);
        let greedy_final = *greedy.cost_trajectory.last().unwrap();
        for strategy in [
            &SwapHillClimb::default() as &dyn SearchStrategy,
            &Anneal::with_seed(0xC0FFEE),
        ] {
            let r = strategy.search(pool, model, &gopts);
            let fin = *r.cost_trajectory.last().unwrap();
            assert!(
                fin <= greedy_final * (1.0 + 1e-12),
                "{tag}/{}: {fin} worse than greedy {greedy_final}",
                strategy.name()
            );
            assert!(
                r.total_bytes <= budget,
                "{tag}/{}: over budget",
                strategy.name()
            );
            // The reported selection must really price to the reported
            // final cost.
            assert_eq!(
                model.price_full(&r.selection).total(),
                fin,
                "{tag}/{}: final cost does not match selection",
                strategy.name()
            );
        }
    }
}

#[test]
fn parallel_and_serial_model_construction_agree_on_star_workload() {
    // 24 queries so the parallel feature's thread fan-out actually kicks
    // in (it stays serial below 8 queries per thread).
    let schema = StarSchema::generate(42, 0.01);
    let workload = StarWorkload::generate(&schema, 7, 24);
    let pool = generate_candidates(&schema.catalog, &workload.queries);
    let models = build_models(&schema.catalog, &workload.queries, &pool);
    let built = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
    let serial = WorkloadModel::build_serial(pool.len(), models.iter().map(|(c, a)| (c, a)));
    assert_eq!(built, serial, "parallel flattening changed the model");
    // And the two price identically (belt and braces beyond PartialEq).
    let sel = Selection::from_ids(pool.len(), &[0, pool.len() / 2, pool.len() - 1]);
    let a = built.price_full(&sel);
    let b = serial.price_full(&sel);
    assert_eq!(a.per_query(), b.per_query());
}
