//! # pinum — Caching All Plans with Just One Optimizer Call
//!
//! Facade crate for the reproduction of Dash et al., *Caching All Plans with
//! Just One Optimizer Call* (ICDE Workshops 2010). It re-exports the public
//! API of every subsystem:
//!
//! * [`catalog`] — tables, statistics, B-tree size models, what-if indexes,
//!   configurations;
//! * [`cost`] — PostgreSQL-style cost model;
//! * [`query`] — SPJ+aggregation queries, selectivity, interesting orders;
//! * [`optimizer`] — bottom-up System-R dynamic-programming optimizer with
//!   the PINUM instrumentation hooks;
//! * [`core`] — the INUM plan cache, its cost model, the classic
//!   (per-IOC) and PINUM (one-call) cache builders, and the workload-scale
//!   incremental pricing engine (`WorkloadModel`);
//! * [`advisor`] — greedy index-selection tool with a space budget, driven
//!   by incremental delta pricing (probe a candidate → re-price only the
//!   queries it can affect);
//! * [`online`] — the online tuning subsystem: a sliding-window
//!   `OnlineAdvisor` daemon that admits/evicts queries into the streaming
//!   `WorkloadModel` and re-advises on epochs and detected drift,
//!   warm-starting the search from the previous selection;
//! * [`workload`] — the paper's synthetic star-schema workload and TPC-H
//!   statistics;
//! * [`engine`] — a mini in-memory executor for small-scale validation.
//!
//! ## Quickstart
//!
//! ```
//! use pinum::workload::star::{StarSchema, StarWorkload};
//! use pinum::optimizer::{Optimizer, OptimizerOptions};
//! use pinum::core::builder::{build_cache_pinum, BuilderOptions};
//!
//! // The paper's synthetic star-schema workload, scaled down.
//! let schema = StarSchema::generate(42, 0.01);
//! let workload = StarWorkload::generate(&schema, 42, 10);
//! let optimizer = Optimizer::new(&schema.catalog);
//!
//! // Fill an INUM plan cache with ~2 optimizer calls instead of one per
//! // interesting-order combination.
//! let query = &workload.queries[0];
//! let built = build_cache_pinum(&optimizer, query, &BuilderOptions::default());
//! assert!(built.stats.optimizer_calls <= 3);
//! ```

pub use pinum_advisor as advisor;
pub use pinum_catalog as catalog;
pub use pinum_core as core;
pub use pinum_cost as cost;
pub use pinum_engine as engine;
pub use pinum_online as online;
pub use pinum_optimizer as optimizer;
pub use pinum_query as query;
pub use pinum_workload as workload;
